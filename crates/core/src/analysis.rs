//! The Herbgrind analysis proper: a [`Tracer`] that maintains the shadow
//! state of Figure 3 and the per-statement records of Figure 4.
//!
//! # Hot-loop layout
//!
//! The per-operation path is deliberately free of hashing, cloning, and map
//! lookups (the dominant bookkeeping costs around the shadow arithmetic):
//!
//! * **Shadow memory** is a flat, address-indexed slot table
//!   (`Vec<ShadowSlot<R>>`) instead of a `HashMap<Addr, Shadow<R>>`. Each
//!   slot carries the run generation it was written in, so the per-run
//!   reset required by the paper's semantics (shadow memory is per-run
//!   state) is a single counter bump.
//! * **Operand shadows are borrowed, never cloned**: the exact values are
//!   passed to the shadow kernels as `&[&R]`
//!   ([`shadowreal::Real::apply_ref`]) and trace/influence data is read in
//!   place via split field borrows. Only the destination shadow is written.
//! * **Records** live in pc-indexed `Vec<Option<OpRecord>>` /
//!   `Vec<Option<SpotRecord>>` slot tables sized once per program. They are
//!   folded into ordered form only at [`Herbgrind::report`] /
//!   [`Herbgrind::merge`] time; since slot index order *is* ascending pc
//!   order (the order the old `BTreeMap`s iterated in), merged reports stay
//!   bit-identical to the serial ones.
//!
//! The retained map-based implementation lives in [`crate::reference`] and
//! is held bit-identical to this one by the equivalence test suite.

// Quarantine semantics depend on faults being *typed*: a stray `.unwrap()`
// in driver code turns a recoverable per-input fault into a sweep-wide
// panic, so bare unwraps are denied here (tests opt back in locally).
#![deny(clippy::unwrap_used)]

use crate::config::AnalysisConfig;
use crate::localerr::{local_error_ref, total_error};
use crate::records::{InfluenceSet, OpRecord, SpotKind, SpotRecord};
use crate::report::Report;
use crate::trace::{ConcreteExpr, ExprInterner, TraceChildren};
use fpcore::CmpOp;
use fpvm::{Addr, Machine, MachineError, Program, SourceLoc, Tracer, Value, MAX_ARITY};
use shadowreal::{BigFloat, Real, RealOp, MAX_ERROR_BITS};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// The shadow of one memory location: its exact value, the concrete
/// expression that produced it, and the candidate root causes that influenced
/// it (the three shadow memories `M_R`, `M_E`, `M_I` of Figure 3).
#[derive(Clone, Debug)]
struct Shadow<R> {
    real: R,
    expr: Arc<ConcreteExpr>,
    influences: InfluenceSet,
}

/// One address's entry in the flat shadow table, stamped with the run
/// generation that wrote it. A slot whose stamp does not match the current
/// generation is stale state from an earlier input and reads as absent;
/// a matching stamp with `shadow: None` records an explicit invalidation
/// (integer constants, float→int destinations).
#[derive(Debug)]
struct ShadowSlot<R> {
    gen: u64,
    shadow: Option<Shadow<R>>,
}

impl<R> Default for ShadowSlot<R> {
    fn default() -> Self {
        ShadowSlot {
            gen: 0,
            shadow: None,
        }
    }
}

/// Reads the shadow for `addr` if the current run wrote one.
fn shadow_at<R>(slots: &[ShadowSlot<R>], gen: u64, addr: Addr) -> Option<&Shadow<R>> {
    slots
        .get(addr)
        .filter(|slot| slot.gen == gen)
        .and_then(|slot| slot.shadow.as_ref())
}

/// Writes (or invalidates, with `None`) the shadow for `addr`, growing the
/// table on the cold path so the analysis stays correct even for statements
/// beyond the address space announced at `on_start`.
fn put_shadow<R>(slots: &mut Vec<ShadowSlot<R>>, gen: u64, addr: Addr, shadow: Option<Shadow<R>>) {
    if addr >= slots.len() {
        slots.resize_with(addr + 1, ShadowSlot::default);
    }
    let slot = &mut slots[addr];
    slot.gen = gen;
    slot.shadow = shadow;
}

/// Makes sure `addr` has a shadow for the current run (the lazy shadowing of
/// §6), creating a leaf shadow through the supplied interner — the caller
/// decides whether that is the shard's own table or a batched group's shared
/// one.
fn ensure_shadow_inner<R: Real>(
    shadow_slots: &mut Vec<ShadowSlot<R>>,
    gen: u64,
    interner: &mut ExprInterner,
    config: &AnalysisConfig,
    addr: Addr,
    client_value: f64,
) {
    if addr >= shadow_slots.len() {
        shadow_slots.resize_with(addr + 1, ShadowSlot::default);
    }
    let slot = &shadow_slots[addr];
    if slot.gen == gen && slot.shadow.is_some() {
        return;
    }
    let fresh = Shadow {
        real: R::from_f64_prec(client_value, config.shadow_precision),
        expr: interner.leaf(client_value),
        influences: InfluenceSet::new(),
    };
    let slot = &mut shadow_slots[addr];
    slot.gen = gen;
    slot.shadow = Some(fresh);
}

/// Builds the hash-consed concrete expression for one compute result, so
/// repeated subtraces share one allocation.
///
/// Stored traces are depth-bounded with hysteresis: the reported bound is
/// `max_expression_depth` (D), but shadow memory keeps traces up to 4D deep
/// and truncates back to D only when that storage bound overflows.
/// Truncating a deep trace is O(tree) — done per operation (as the reference
/// path does) it dominates loop-carried chains; done on overflow every ≥3D
/// operations it amortizes to O(tree/D) per operation, while memory stays
/// bounded by the 4D storage depth. Records observe the trace through a
/// depth budget ([`OpRecord::record_bounded`]), which reads nodes beyond D
/// as value leaves — bit-identical to truncating first, because truncation
/// preserves every value, operation, and location above the cut.
#[allow(clippy::too_many_arguments)]
fn build_compute_trace<R: Real>(
    config: &AnalysisConfig,
    shadow_slots: &[ShadowSlot<R>],
    gen: u64,
    interner: &mut ExprInterner,
    locations: &[Arc<SourceLoc>],
    pc: usize,
    op: RealOp,
    args: &[Addr],
    result: f64,
) -> Arc<ConcreteExpr> {
    let n = args.len();
    let first = shadow_at(shadow_slots, gen, args[0]).expect("operand shadow populated");
    let mut expr_refs: [&Arc<ConcreteExpr>; MAX_ARITY] = [&first.expr; MAX_ARITY];
    for (i, &addr) in args.iter().enumerate() {
        expr_refs[i] = &shadow_at(shadow_slots, gen, addr)
            .expect("operand shadow populated")
            .expr;
    }
    let location = location_of(locations, pc);
    let max_depth = config.max_expression_depth;
    let store_bound = max_depth.saturating_mul(4);
    let depth = 1 + expr_refs[..n].iter().map(|c| c.depth()).max().unwrap_or(0);
    if depth <= intern_depth_bound(config) {
        interner.node_ref(op, result, &expr_refs[..n], pc, location)
    } else {
        let node = ConcreteExpr::node(
            op,
            result,
            TraceChildren::from_refs(&expr_refs[..n]),
            pc,
            Arc::clone(location),
        );
        if depth <= store_bound {
            node
        } else {
            node.truncate_to_depth(max_depth)
        }
    }
}

/// The depth up to which result nodes are worth hash-consing. A node can
/// only be a table hit when the same statement re-executes with the same
/// value **and** the same operand allocations — repeating, loop-invariant
/// subcomputations, which are structurally shallow. Loop-*carried* chains
/// deepen every iteration with fresh values, so their nodes never hit; the
/// anti-unification's bounded equivalence walks subtrees only to the
/// configured depth anyway, so sharing beyond about twice that bound buys
/// nothing — while hashing, probing, and inserting every chain node was
/// measurable overhead on loop-heavy programs. The bound affects sharing
/// only, never analysis output.
pub(crate) fn intern_depth_bound(config: &AnalysisConfig) -> usize {
    config
        .antiunify_equivalence_depth
        .saturating_mul(2)
        .min(config.max_expression_depth.saturating_mul(4))
}

/// The telemetry counter attributing analyzed operations to this shadow
/// representation ([`Real::kind_name`]). Resolves to a constant reference
/// per monomorphization; any out-of-tree shadow kind counts as BigFloat
/// (the only other in-tree escalation tier).
#[inline]
pub(crate) fn shadow_ops_counter<R: Real>() -> &'static telemetry::Counter {
    match R::kind_name() {
        "f64" => &telemetry::SHADOW_F64_OPS,
        "dd" => &telemetry::SHADOW_DD_OPS,
        _ => &telemetry::SHADOW_BIGFLOAT_OPS,
    }
}

/// Grows a pc-indexed record slot table to cover `pc` and returns the slot
/// (cold path; `on_start` pre-sizes the tables to the program length).
fn record_slot<T>(slots: &mut Vec<Option<T>>, pc: usize) -> &mut Option<T> {
    if pc >= slots.len() {
        slots.resize_with(pc + 1, || None);
    }
    &mut slots[pc]
}

/// Looks up a statement's interned location by reference (falling back to a
/// shared static default), so per-event location lookups never clone a
/// `SourceLoc` — trace nodes share the statement's `Arc`.
fn location_of(locations: &[Arc<SourceLoc>], pc: usize) -> &Arc<SourceLoc> {
    static DEFAULT: OnceLock<Arc<SourceLoc>> = OnceLock::new();
    locations
        .get(pc)
        .unwrap_or_else(|| DEFAULT.get_or_init(|| Arc::new(SourceLoc::static_default().clone())))
}

/// Splits `items` into at most `parts` contiguous chunks whose lengths
/// differ by at most one: the first `len % parts` chunks carry the extra
/// element. Every chunk is non-empty (an empty input yields one empty
/// chunk), so every worker (thread shard or SIMD
/// lane) gets work whenever there are at least `parts` items. The previous
/// `chunks(len.div_ceil(parts))` scheme produced *fewer* chunks than workers
/// whenever the length was not a near-multiple of the count — 9 inputs for 8
/// lanes made chunks of `[2, 2, 2, 2, 1]` and idled 3 workers. Chunks stay
/// contiguous and in input order, so merging them in chunk order remains the
/// bit-identical in-input-order merge the drivers rely on.
pub(crate) fn balanced_chunks<T>(items: &[T], parts: usize) -> Vec<&[T]> {
    let parts = parts.clamp(1, items.len().max(1));
    let base = items.len() / parts;
    let extra = items.len() % parts;
    let mut chunks = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        chunks.push(&items[start..start + len]);
        start += len;
    }
    debug_assert_eq!(start, items.len());
    chunks
}

/// Detects a compensating addition or subtraction (§5.3): the operation
/// returns one of its arguments exactly in the reals, and its output has
/// less error than that passed-through argument. Returns the index of the
/// passed-through argument.
fn detect_compensation<R: Real>(
    config: &AnalysisConfig,
    op: RealOp,
    exact_args: &[&R],
    arg_values: &[f64],
    exact_result: &R,
    client_result: f64,
) -> Option<usize> {
    if !config.detect_compensation || !matches!(op, RealOp::Add | RealOp::Sub) {
        return None;
    }
    for (i, exact_arg) in exact_args.iter().enumerate() {
        let passes_through = if op == RealOp::Sub && i == 1 {
            // a - b returns (the negation of) b only when a is zero;
            // treat only the first argument as a pass-through candidate
            // for subtraction.
            false
        } else {
            exact_result.eq_value(exact_arg)
        };
        if !passes_through {
            continue;
        }
        let output_error = total_error(client_result, exact_result);
        let arg_error = total_error(arg_values[i], *exact_arg);
        if output_error <= arg_error {
            return Some(i);
        }
    }
    None
}

/// The Herbgrind dynamic analysis, generic over the shadow-real
/// representation.
///
/// Attach it to a machine run with [`fpvm::Machine::run_traced`], or use the
/// [`analyze`] driver. Records accumulate across runs, so one `Herbgrind`
/// value can observe a whole input sweep; shadow memory is reset per run
/// (by generation stamp, in O(1)). The slot tables and the interner's hash
/// tables are allocated once and reused across the sweep, so an N-input run
/// does O(program) setup rather than O(N × program).
#[derive(Debug)]
pub struct Herbgrind<R: Real> {
    config: AnalysisConfig,
    shadow_slots: Vec<ShadowSlot<R>>,
    shadow_gen: u64,
    /// Per-shard hash-consing table for trace nodes: repeated subtraces
    /// share one allocation, and anti-unification hits pointer-identity
    /// fast paths. Per-run state like the shadow slots (cleared by
    /// `on_start`).
    interner: ExprInterner,
    op_slots: Vec<Option<OpRecord>>,
    spot_slots: Vec<Option<SpotRecord>>,
    /// Interned per-statement locations: every trace node built for a
    /// statement shares its `Arc` instead of cloning the location's strings.
    locations: Vec<Arc<SourceLoc>>,
    program_name: String,
    runs: u64,
    compensations_detected: u64,
    branch_divergences: u64,
    /// An analysis-side fault (trace-budget exhaustion, injected failure)
    /// awaiting delivery through the interpreter's per-step
    /// [`Tracer::fault`] poll, which aborts the run with it.
    pending_fault: Option<MachineError>,
    /// Fault-injection context for the current run: the global input index
    /// and the pipeline stage, consulted against the installed
    /// [`crate::faultinject`] plan on every compute observation.
    #[cfg(feature = "fault-injection")]
    inject: Option<(usize, crate::faultinject::InjectStage)>,
    /// Tier-0 static prune mask: compute statements certified stable by the
    /// static error-dataflow pass ([`staticerr`]) skip shadow arithmetic
    /// entirely. Installed only by the tiered driver, and only for inputs
    /// inside the statically declared region — every other driver leaves it
    /// `None` and behaves exactly as before.
    prune: Option<Arc<staticerr::PruneMask>>,
}

impl<R: Real> Herbgrind<R> {
    /// Creates an analysis with the given configuration. The configuration
    /// is normalized ([`AnalysisConfig::normalize`]) so invariant-violating
    /// struct literals (e.g. `max_expression_depth: 0`, which the builder
    /// clamps but a literal can bypass) cannot reach the analysis.
    pub fn new(config: AnalysisConfig) -> Herbgrind<R> {
        telemetry::INTERNER_NODE_BUDGET.record(config.trace_node_budget as u64);
        Herbgrind {
            config: config.normalize(),
            shadow_slots: Vec::new(),
            shadow_gen: 0,
            interner: ExprInterner::new(),
            op_slots: Vec::new(),
            spot_slots: Vec::new(),
            locations: Vec::new(),
            program_name: String::new(),
            runs: 0,
            compensations_detected: 0,
            branch_divergences: 0,
            pending_fault: None,
            #[cfg(feature = "fault-injection")]
            inject: None,
            prune: None,
        }
    }

    /// Installs (or clears) the tier-0 static prune mask consulted by every
    /// compute observation. Callers are responsible for only installing a
    /// mask whose declared input region covers the inputs about to run —
    /// the tiered driver checks each input and sweeps out-of-region inputs
    /// unpruned.
    pub(crate) fn set_prune_mask(&mut self, mask: Option<Arc<staticerr::PruneMask>>) {
        self.prune = mask;
    }

    /// Observes a statically pruned compute. The operation record is still
    /// created (report totals count operations by record *existence*, and a
    /// certified statement's record never becomes erroneous, so an empty
    /// record is report-identical to a fully-populated clean one), and the
    /// destination shadow is invalidated so any downstream consumer lazily
    /// recreates a leaf from the client double — the certification margin
    /// guarantees that leaf is within the statically bounded drift of the
    /// exact value, and the prune mask's poison fixpoint guarantees the
    /// substitution is invisible in the report.
    pub(crate) fn on_pruned_compute(&mut self, pc: usize, op: RealOp, dest: Addr) {
        self.op_record_entry(pc, op);
        put_shadow(&mut self.shadow_slots, self.shadow_gen, dest, None);
    }

    /// Arms deterministic fault injection for the next run: `input_index` is
    /// the sweep-global index of the input about to run and `stage` the
    /// pipeline stage executing it. Consulted by every compute observation
    /// against the installed [`crate::faultinject`] plan.
    #[cfg(feature = "fault-injection")]
    pub(crate) fn arm_injection(
        &mut self,
        input_index: usize,
        stage: crate::faultinject::InjectStage,
    ) {
        self.inject = Some((input_index, stage));
    }

    /// Consults the installed fault plan for the current (input, pc, stage)
    /// site. Panics for injected panics, latches budget faults into
    /// [`Herbgrind::pending_fault`], and returns `true` when the exact
    /// shadow result should be NaN-poisoned.
    #[cfg(feature = "fault-injection")]
    fn consult_injection(&mut self, pc: usize) -> bool {
        use crate::faultinject::{self, InjectKind, InjectStage};
        let Some((input_index, stage)) = self.inject else {
            return false;
        };
        match faultinject::query(input_index, pc, stage) {
            Some(InjectKind::Panic) => {
                panic!("injected analysis panic: input {input_index}, pc {pc}")
            }
            Some(InjectKind::StepBudget) => {
                self.pending_fault = Some(MachineError::StepBudgetExceeded {
                    limit: self.config.step_limit,
                });
                false
            }
            Some(InjectKind::Deadline) => {
                self.pending_fault = Some(MachineError::DeadlineExceeded {
                    millis: self.config.deadline_millis.max(1),
                });
                false
            }
            Some(InjectKind::TraceBudget) => {
                self.pending_fault = Some(MachineError::TraceBudgetExceeded {
                    limit: self.config.trace_node_budget.max(1),
                });
                false
            }
            Some(InjectKind::NanPoison) => true,
            Some(InjectKind::TierEscalation) => {
                // Modeled as the escalation tier itself failing: the
                // BigFloat reference tier panics, ending the retry ladder.
                if stage == InjectStage::TieredBigFloat {
                    panic!("injected tier-escalation failure: input {input_index}, pc {pc}")
                }
                false
            }
            None => false,
        }
    }

    /// Creates a shadow leaf for a client value at the configured shadow
    /// precision. Precision is carried by the analysis, not by process-global
    /// state: binary operations propagate the larger operand precision, so
    /// seeding every leaf is enough, and two concurrent analyses with
    /// different [`AnalysisConfig::shadow_precision`] values cannot corrupt
    /// each other.
    fn shadow_leaf(&self, value: f64) -> R {
        R::from_f64_prec(value, self.config.shadow_precision)
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// The number of runs observed so far.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// The number of compensating operations whose influence was suppressed
    /// (§5.3 / §8.3).
    pub fn compensations_detected(&self) -> u64 {
        self.compensations_detected
    }

    /// The number of control-flow divergences between the float and shadow
    /// executions.
    pub fn branch_divergences(&self) -> u64 {
        self.branch_divergences
    }

    /// Per-statement operation records (candidate root causes and their
    /// symbolic expressions), assembled on demand from the pc-indexed slot
    /// table.
    pub fn op_records(&self) -> BTreeMap<usize, &OpRecord> {
        self.op_slots
            .iter()
            .enumerate()
            .filter_map(|(pc, slot)| slot.as_ref().map(|record| (pc, record)))
            .collect()
    }

    /// Per-statement spot records, assembled on demand from the pc-indexed
    /// slot table.
    pub fn spot_records(&self) -> BTreeMap<usize, &SpotRecord> {
        self.spot_slots
            .iter()
            .enumerate()
            .filter_map(|(pc, slot)| slot.as_ref().map(|record| (pc, record)))
            .collect()
    }

    /// Makes sure `addr` has a shadow for the current run, creating a leaf
    /// shadow from the client value when the location has never been written
    /// by a tracked float operation (the lazy shadowing of §6). Unlike the
    /// reference implementation's `shadow_of`, nothing is cloned: callers
    /// read the populated slot by reference afterwards.
    pub(crate) fn ensure_shadow(&mut self, addr: Addr, client_value: f64) {
        let Herbgrind {
            config,
            shadow_slots,
            shadow_gen,
            interner,
            ..
        } = self;
        ensure_shadow_inner(
            shadow_slots,
            *shadow_gen,
            interner,
            config,
            addr,
            client_value,
        );
    }

    /// [`Herbgrind::ensure_shadow`] with the leaf interner supplied by the
    /// caller: the batched analysis shares one group-level interner across
    /// all lane shards, so leaves with identical values are pointer-shared
    /// between lanes and the group trace layer's shared-children fast path
    /// keeps firing. (Where a leaf's allocation comes from is invisible to
    /// the analysis output.)
    pub(crate) fn ensure_shadow_in(
        &mut self,
        interner: &mut ExprInterner,
        addr: Addr,
        client_value: f64,
    ) {
        let Herbgrind {
            config,
            shadow_slots,
            shadow_gen,
            ..
        } = self;
        ensure_shadow_inner(
            shadow_slots,
            *shadow_gen,
            interner,
            config,
            addr,
            client_value,
        );
    }

    /// Writes a constant-leaf shadow (the serial `on_const_f` effect) with a
    /// caller-supplied trace leaf — the batched analysis builds the leaf once
    /// per group and shares it across the group's lanes.
    pub(crate) fn set_const_shadow(&mut self, dest: Addr, value: f64, expr: Arc<ConcreteExpr>) {
        let shadow = Shadow {
            real: self.shadow_leaf(value),
            expr,
            influences: InfluenceSet::new(),
        };
        put_shadow(&mut self.shadow_slots, self.shadow_gen, dest, Some(shadow));
    }

    /// The statement's interned source location (for the batched analysis's
    /// group trace construction; identical across lane shards).
    pub(crate) fn location(&self, pc: usize) -> &Arc<SourceLoc> {
        location_of(&self.locations, pc)
    }

    /// The operation record slot for `pc`, created on first use — the
    /// batched record layer borrows per-lane records through this when
    /// folding a lane group's observations.
    pub(crate) fn op_record_entry(&mut self, pc: usize, op: RealOp) -> &mut OpRecord {
        let Herbgrind {
            config,
            op_slots,
            locations,
            ..
        } = self;
        record_slot(op_slots, pc).get_or_insert_with(|| {
            OpRecord::new(op, location_of(locations, pc).as_ref().clone(), config)
        })
    }

    /// The exact value and the trace of `addr`'s shadow together — one slot
    /// probe for both, for the batched gather that feeds the vectorized
    /// evaluation and the group trace construction from the same pass
    /// (after [`Herbgrind::ensure_shadow_in`] has populated the operands).
    pub(crate) fn shadow_parts(&self, addr: Addr) -> Option<(&R, &Arc<ConcreteExpr>)> {
        shadow_at(&self.shadow_slots, self.shadow_gen, addr)
            .map(|shadow| (&shadow.real, &shadow.expr))
    }

    /// The record-keeping tail of a compute observation, with the exact
    /// evaluation already done: compensation detection, influence
    /// propagation, trace construction, record update, and the destination
    /// shadow write. `Tracer::on_compute` calls this after evaluating the
    /// operation serially; the batched analysis calls it per lane after one
    /// lane-vectorized evaluation ([`shadowreal::BatchReal`]), whose
    /// bit-identity contract makes the two entry points indistinguishable.
    ///
    /// Every operand must already have a shadow for the current run
    /// ([`Herbgrind::ensure_shadow`]), and `local_err`/`exact_result` must be
    /// exactly what [`crate::localerr::local_error_ref`] computes on those
    /// operand shadows.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish_compute(
        &mut self,
        pc: usize,
        op: RealOp,
        dest: Addr,
        args: &[Addr],
        arg_values: &[f64],
        result: f64,
        local_err: f64,
        exact_result: R,
    ) {
        shadow_ops_counter::<R>().incr();
        // Build the result trace through the shard's own interner, then run
        // the shadow tail and the record update. The batched analysis uses
        // the same two tail steps but builds traces through its group-level
        // interner ([`ExprInterner::node_group`]) and folds the record
        // updates of a whole lane group through
        // [`OpRecord::record_bounded_group`]; both orders of sub-steps are
        // confined to per-lane state, so the decomposition cannot be
        // observed in the report.
        let node = {
            let Herbgrind {
                config,
                shadow_slots,
                shadow_gen,
                interner,
                locations,
                ..
            } = &mut *self;
            build_compute_trace(
                config,
                shadow_slots,
                *shadow_gen,
                interner,
                locations,
                pc,
                op,
                args,
                result,
            )
        };
        let recorded = self.compute_shadow_tail(
            pc,
            op,
            dest,
            args,
            arg_values,
            result,
            local_err,
            exact_result,
            Arc::clone(&node),
        );
        if let Some(erroneous) = recorded {
            let Herbgrind {
                config,
                op_slots,
                locations,
                ..
            } = &mut *self;
            let record = record_slot(op_slots, pc).get_or_insert_with(|| {
                OpRecord::new(op, location_of(locations, pc).as_ref().clone(), config)
            });
            record.record_bounded(
                &node,
                config.max_expression_depth,
                local_err,
                erroneous,
                config,
            );
        }
        // Trace-memory budget ([`AnalysisConfig::trace_node_budget`]): the
        // per-run interner is the analysis's dominant growing allocation, so
        // its node count is the budget's measure. The fault is delivered
        // through the interpreter's per-step poll, aborting the run before
        // the next statement. (The batched engine interns through its
        // group-level table and performs the equivalent check there.)
        let budget = self.config.trace_node_budget;
        if budget != 0 && self.interner.len() >= budget && self.pending_fault.is_none() {
            self.pending_fault = Some(MachineError::TraceBudgetExceeded { limit: budget });
        }
    }

    /// The shadow-memory half of one compute observation, with the result
    /// trace already built: influence propagation, compensation detection
    /// (§5.3), and the destination-shadow write. Returns `Some(erroneous)`
    /// when the operation's record should also observe the execution (the
    /// operation was not a detected compensation), `None` otherwise; callers
    /// route the record update through [`OpRecord::record_bounded`] (serial)
    /// or [`OpRecord::record_bounded_group`] (batched lane groups).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn compute_shadow_tail(
        &mut self,
        pc: usize,
        op: RealOp,
        dest: Addr,
        args: &[Addr],
        arg_values: &[f64],
        result: f64,
        local_err: f64,
        exact_result: R,
        node: Arc<ConcreteExpr>,
    ) -> Option<bool> {
        // Split field borrows: operand shadows stay borrowed from the slot
        // table while influences accumulate; only the destination is written.
        let Herbgrind {
            config,
            shadow_slots,
            shadow_gen,
            compensations_detected,
            ..
        } = self;
        let config: &AnalysisConfig = config;
        let gen = *shadow_gen;
        let n = args.len();

        let first = shadow_at(shadow_slots, gen, args[0]).expect("operand shadow populated");
        let mut exact_refs: [&R; MAX_ARITY] = [&first.real; MAX_ARITY];
        let mut influences = InfluenceSet::new();
        for (i, &addr) in args.iter().enumerate() {
            let shadow = shadow_at(shadow_slots, gen, addr).expect("operand shadow populated");
            exact_refs[i] = &shadow.real;
            influences.union_with(&shadow.influences);
        }
        let erroneous = local_err > config.local_error_threshold;

        // Compensation detection (§5.3): the compensating term's influences
        // are not propagated, and the compensated operation is not itself
        // reported as a candidate root cause.
        let compensation = detect_compensation(
            config,
            op,
            &exact_refs[..n],
            arg_values,
            &exact_result,
            result,
        );
        if let Some(passthrough_index) = compensation {
            *compensations_detected += 1;
            influences.clear();
            let shadow = shadow_at(shadow_slots, gen, args[passthrough_index])
                .expect("operand shadow populated");
            influences.union_with(&shadow.influences);
        } else if erroneous {
            influences.insert(pc);
        }

        // Update the destination shadow (the only slot written).
        put_shadow(
            shadow_slots,
            gen,
            dest,
            Some(Shadow {
                real: exact_result,
                expr: node,
                influences,
            }),
        );
        if compensation.is_none() {
            Some(erroneous)
        } else {
            None
        }
    }

    /// Merges the state of a later input shard into this one.
    ///
    /// Run sharding is clean because shadow memory is per-run state (reset by
    /// [`Tracer::on_start`]) while the per-statement records accumulate with
    /// counts, exact sums, maxima, set unions, and anti-unification — all of
    /// which combine associatively. The slot tables are merged index-wise,
    /// which is exactly ascending-pc order, so merging shards in input order
    /// reproduces, bit for bit, the records a single analysis accumulates
    /// over the whole sweep; this is the foundation of [`analyze_parallel`]
    /// and is checked end-to-end by the determinism test suite.
    pub fn merge(&mut self, other: Herbgrind<R>) {
        if self.locations.is_empty() {
            self.locations = other.locations;
            self.program_name = other.program_name;
        }
        self.runs += other.runs;
        self.compensations_detected += other.compensations_detected;
        self.branch_divergences += other.branch_divergences;
        // Interners are consulted only mid-run — at merge time both tables
        // are dead weight, so release them instead of unioning shard trace
        // nodes into memory nothing will read. (Interning never affects
        // analysis output, so this cannot perturb the bit-identical merge
        // contract.)
        self.interner.clear();
        drop(other.interner);
        if self.op_slots.len() < other.op_slots.len() {
            self.op_slots.resize_with(other.op_slots.len(), || None);
        }
        for (pc, record) in other.op_slots.into_iter().enumerate() {
            let Some(record) = record else { continue };
            match &mut self.op_slots[pc] {
                Some(existing) => existing.merge(&record, &self.config),
                slot @ None => *slot = Some(record),
            }
        }
        if self.spot_slots.len() < other.spot_slots.len() {
            self.spot_slots.resize_with(other.spot_slots.len(), || None);
        }
        for (pc, record) in other.spot_slots.into_iter().enumerate() {
            let Some(record) = record else { continue };
            match &mut self.spot_slots[pc] {
                Some(existing) => existing.merge(&record),
                slot @ None => *slot = Some(record),
            }
        }
    }

    /// Produces the final report. The slot tables are folded into ordered
    /// form here — the only place order matters — rather than on every
    /// operation.
    pub fn report(&self) -> Report {
        Report::build(
            &self.program_name,
            &self.config,
            self.op_slots
                .iter()
                .enumerate()
                .filter_map(|(pc, slot)| slot.as_ref().map(|record| (pc, record))),
            self.spot_slots
                .iter()
                .enumerate()
                .filter_map(|(pc, slot)| slot.as_ref().map(|record| (pc, record))),
            self.runs,
            self.compensations_detected,
            self.branch_divergences,
        )
    }

    /// Extracts the accumulated analysis results, dropping the shadow-real
    /// state. The returned [`AnalysisState`] carries no trace of which
    /// shadow representation produced it — which is what lets the tiered
    /// driver ([`crate::tiered::analyze_tiered`]) fold `DoubleDouble`-tier
    /// and `BigFloat`-tier sweeps into one report.
    pub fn into_state(self) -> AnalysisState {
        AnalysisState {
            config: self.config,
            op_slots: self.op_slots,
            spot_slots: self.spot_slots,
            locations: self.locations,
            program_name: self.program_name,
            runs: self.runs,
            compensations_detected: self.compensations_detected,
            branch_divergences: self.branch_divergences,
        }
    }
}

/// The shadow-type-independent results of an analysis sweep: the
/// per-statement record tables and counters of a [`Herbgrind`], without the
/// shadow memory or the shadow-real type parameter.
///
/// Records combine associatively and index-wise exactly as
/// [`Herbgrind::merge`] combines them, so states extracted from sweeps over
/// *different shadow representations* merge cleanly — the foundation of the
/// tiered analysis, where certified input groups run on the `DoubleDouble`
/// shadow and the rest on [`BigFloat`], and the groups' states are folded
/// back in input order.
#[derive(Debug)]
pub struct AnalysisState {
    config: AnalysisConfig,
    op_slots: Vec<Option<OpRecord>>,
    spot_slots: Vec<Option<SpotRecord>>,
    locations: Vec<Arc<SourceLoc>>,
    program_name: String,
    runs: u64,
    compensations_detected: u64,
    branch_divergences: u64,
}

impl AnalysisState {
    /// An empty state (no runs observed), for seeding a merge fold.
    pub fn empty(config: AnalysisConfig) -> AnalysisState {
        AnalysisState {
            config,
            op_slots: Vec::new(),
            spot_slots: Vec::new(),
            locations: Vec::new(),
            program_name: String::new(),
            runs: 0,
            compensations_detected: 0,
            branch_divergences: 0,
        }
    }

    /// The number of runs folded into this state.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Merges a later input shard's state into this one — the same
    /// index-wise, in-input-order fold as [`Herbgrind::merge`], so chaining
    /// per-group states in input order reproduces the records of one
    /// continuous sweep bit for bit.
    pub fn merge(&mut self, other: AnalysisState) {
        if self.locations.is_empty() {
            self.locations = other.locations;
            self.program_name = other.program_name;
        }
        self.runs += other.runs;
        self.compensations_detected += other.compensations_detected;
        self.branch_divergences += other.branch_divergences;
        if self.op_slots.len() < other.op_slots.len() {
            self.op_slots.resize_with(other.op_slots.len(), || None);
        }
        for (pc, record) in other.op_slots.into_iter().enumerate() {
            let Some(record) = record else { continue };
            match &mut self.op_slots[pc] {
                Some(existing) => existing.merge(&record, &self.config),
                slot @ None => *slot = Some(record),
            }
        }
        if self.spot_slots.len() < other.spot_slots.len() {
            self.spot_slots.resize_with(other.spot_slots.len(), || None);
        }
        for (pc, record) in other.spot_slots.into_iter().enumerate() {
            let Some(record) = record else { continue };
            match &mut self.spot_slots[pc] {
                Some(existing) => existing.merge(&record),
                slot @ None => *slot = Some(record),
            }
        }
    }

    /// Builds the report — identical to [`Herbgrind::report`] on the
    /// analysis this state was extracted (and merged) from.
    pub fn report(&self) -> Report {
        Report::build(
            &self.program_name,
            &self.config,
            self.op_slots
                .iter()
                .enumerate()
                .filter_map(|(pc, slot)| slot.as_ref().map(|record| (pc, record))),
            self.spot_slots
                .iter()
                .enumerate()
                .filter_map(|(pc, slot)| slot.as_ref().map(|record| (pc, record))),
            self.runs,
            self.compensations_detected,
            self.branch_divergences,
        )
    }
}

impl<R: Real> Tracer for Herbgrind<R> {
    fn on_start(&mut self, program: &Program, _args: &[f64]) {
        // Shadow memory and the trace interner are per-run (machine memory
        // is reinitialized); the per-statement records persist across runs.
        // The shadow reset is a generation bump — O(1), no drops, no
        // rehashing — and the slot tables keep their allocations across the
        // whole sweep. (Retaining the interner across runs was tried and
        // lost: truncation cycles break pointer-keyed sharing after the
        // first storage-bound overflow, so cross-run hits are rare while
        // every probe walks a colder, ever-growing table.)
        self.shadow_gen += 1;
        if self.shadow_slots.len() < program.num_addrs {
            self.shadow_slots
                .resize_with(program.num_addrs, ShadowSlot::default);
        }
        if self.op_slots.len() < program.len() {
            self.op_slots.resize_with(program.len(), || None);
        }
        if self.spot_slots.len() < program.len() {
            self.spot_slots.resize_with(program.len(), || None);
        }
        self.interner.clear();
        self.pending_fault = None;
        if self.locations.is_empty() {
            self.locations = program
                .locations
                .iter()
                .map(|loc| Arc::new(loc.clone()))
                .collect();
            self.program_name = program.name.clone();
        }
        self.runs += 1;
    }

    fn on_const_f(&mut self, _pc: usize, dest: Addr, value: f64) {
        let shadow = Shadow {
            real: self.shadow_leaf(value),
            expr: self.interner.leaf(value),
            influences: InfluenceSet::new(),
        };
        put_shadow(&mut self.shadow_slots, self.shadow_gen, dest, Some(shadow));
    }

    fn on_const_i(&mut self, _pc: usize, dest: Addr, _value: i64) {
        put_shadow(&mut self.shadow_slots, self.shadow_gen, dest, None);
    }

    fn on_copy(&mut self, _pc: usize, dest: Addr, src: Addr, value: Value) {
        // Copies share the shadow value (§6 "Sharing"); copying a location we
        // never shadowed lazily creates a leaf shadow for float values. One
        // construction and at most one clone per copy — the reference path
        // built the leaf, cloned it into the map, and cloned it again.
        if let Some(shadow) = shadow_at(&self.shadow_slots, self.shadow_gen, src) {
            let shared = shadow.clone();
            put_shadow(&mut self.shadow_slots, self.shadow_gen, dest, Some(shared));
        } else if let Value::F(v) = value {
            self.ensure_shadow(src, v);
            let shared = shadow_at(&self.shadow_slots, self.shadow_gen, src)
                .expect("populated above")
                .clone();
            put_shadow(&mut self.shadow_slots, self.shadow_gen, dest, Some(shared));
        } else {
            put_shadow(&mut self.shadow_slots, self.shadow_gen, dest, None);
        }
    }

    fn on_compute(
        &mut self,
        pc: usize,
        op: RealOp,
        dest: Addr,
        args: &[Addr],
        arg_values: &[f64],
        result: f64,
    ) {
        // Deterministic fault injection: consult the installed plan for this
        // (input, pc, stage) site before any analysis work, so an injected
        // panic models a shadow-op failure at exactly this statement.
        #[cfg(feature = "fault-injection")]
        let poison = self.consult_injection(pc);
        // Tier 0: a statement certified stable by the static pass skips
        // shadow arithmetic entirely (after the injection consult, so
        // injected faults still fire at pruned sites).
        if self.prune.as_ref().is_some_and(|m| m.is_pruned(pc)) {
            telemetry::TIER0_PRUNED_EXECUTIONS.incr();
            self.on_pruned_compute(pc, op, dest);
            return;
        }
        // Make sure every operand has a shadow (creating leaf shadows
        // lazily); afterwards the hot path reads them by reference only.
        for (&addr, &value) in args.iter().zip(arg_values) {
            self.ensure_shadow(addr, value);
        }

        // Local error of this operation on exact inputs (Figure 4).
        #[allow(unused_mut)]
        let (mut local_err, mut exact_result) = {
            let first = shadow_at(&self.shadow_slots, self.shadow_gen, args[0])
                .expect("operand shadow populated");
            let mut exact_refs: [&R; MAX_ARITY] = [&first.real; MAX_ARITY];
            for (slot, &addr) in exact_refs.iter_mut().zip(args) {
                *slot = &shadow_at(&self.shadow_slots, self.shadow_gen, addr)
                    .expect("operand shadow populated")
                    .real;
            }
            local_error_ref(op, &exact_refs[..args.len()])
        };
        // NaN poisoning replaces the exact shadow result — modeling a shadow
        // op hitting a domain edge — and must not crash the analysis: the
        // poisoned shadow propagates through the fail-closed shadow kernels
        // and surfaces as maximal error, never as a fault.
        #[cfg(feature = "fault-injection")]
        if poison {
            exact_result = R::from_f64_prec(f64::NAN, self.config.shadow_precision);
            local_err = MAX_ERROR_BITS;
        }
        self.finish_compute(
            pc,
            op,
            dest,
            args,
            arg_values,
            result,
            local_err,
            exact_result,
        );
    }

    fn on_cast_to_int(&mut self, pc: usize, dest: Addr, src: Addr, value: f64, result: i64) {
        self.ensure_shadow(src, value);
        let Herbgrind {
            shadow_slots,
            shadow_gen,
            spot_slots,
            locations,
            ..
        } = self;
        let shadow = shadow_at(shadow_slots, *shadow_gen, src).expect("shadow populated");
        let shadow_int = shadow.real.to_f64().trunc();
        let diverged = shadow_int as i64 != result;
        let error = if diverged { MAX_ERROR_BITS } else { 0.0 };
        let record = record_slot(spot_slots, pc).get_or_insert_with(|| {
            SpotRecord::new(
                SpotKind::FloatToInt,
                location_of(locations, pc).as_ref().clone(),
            )
        });
        record.record(error, diverged, &shadow.influences);
        put_shadow(shadow_slots, *shadow_gen, dest, None);
    }

    fn on_branch(
        &mut self,
        pc: usize,
        cmp: CmpOp,
        lhs: Addr,
        rhs: Addr,
        lhs_value: Value,
        rhs_value: Value,
        taken: bool,
    ) {
        self.ensure_shadow(lhs, lhs_value.as_f64());
        self.ensure_shadow(rhs, rhs_value.as_f64());
        let Herbgrind {
            shadow_slots,
            shadow_gen,
            spot_slots,
            locations,
            branch_divergences,
            ..
        } = self;
        let gen = *shadow_gen;
        let lhs_shadow = shadow_at(shadow_slots, gen, lhs).expect("shadow populated");
        let rhs_shadow = shadow_at(shadow_slots, gen, rhs).expect("shadow populated");
        let shadow_taken = cmp.holds(lhs_shadow.real.compare(&rhs_shadow.real));
        let diverged = shadow_taken != taken;
        if diverged {
            *branch_divergences += 1;
        }
        let mut influences = InfluenceSet::new();
        influences.union_with(&lhs_shadow.influences);
        influences.union_with(&rhs_shadow.influences);
        let error = if diverged { MAX_ERROR_BITS } else { 0.0 };
        let record = record_slot(spot_slots, pc).get_or_insert_with(|| {
            SpotRecord::new(
                SpotKind::Branch,
                location_of(locations, pc).as_ref().clone(),
            )
        });
        record.record(error, diverged, &influences);
        // The analysis follows the client's control flow (the divergence is
        // recorded, not acted on), exactly as the paper describes.
    }

    fn on_output(&mut self, pc: usize, src: Addr, value: f64) {
        self.ensure_shadow(src, value);
        let Herbgrind {
            config,
            shadow_slots,
            shadow_gen,
            spot_slots,
            locations,
            ..
        } = self;
        let shadow = shadow_at(shadow_slots, *shadow_gen, src).expect("shadow populated");
        // A NaN reaching an output is always reported with maximal error,
        // matching the paper's Gram-Schmidt case study (a NaN produced by a
        // division by zero is reported as 64 bits of error even though the
        // real-number execution is equally undefined there).
        let error = if value.is_nan() {
            MAX_ERROR_BITS
        } else {
            total_error(value, &shadow.real)
        };
        let erroneous = error > config.output_error_threshold;
        let record = record_slot(spot_slots, pc).get_or_insert_with(|| {
            SpotRecord::new(
                SpotKind::Output,
                location_of(locations, pc).as_ref().clone(),
            )
        });
        record.record(error, erroneous, &shadow.influences);
    }

    fn fault(&mut self) -> Option<MachineError> {
        self.pending_fault.take()
    }

    fn has_fault(&self) -> bool {
        self.pending_fault.is_some()
    }
}

/// Runs a program under the analysis for every input vector, using the
/// default [`BigFloat`] shadow reals, and returns the report.
///
/// The configured [`AnalysisConfig::shadow_precision`] is threaded through
/// the shadow-value constructors — it is carried by the analysis, not by
/// process-global state — so concurrent analyses with different precisions
/// do not interfere.
///
/// # Errors
///
/// Propagates [`MachineError`] from the underlying interpreter (arity
/// mismatches or exhausted step budgets).
pub fn analyze(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<Report, MachineError> {
    analyze_with_shadow::<BigFloat>(program, inputs, config)
}

/// Runs a program under the analysis with an explicit shadow-real type
/// (`BigFloat`, `DoubleDouble`, or `f64` for a no-op shadow).
///
/// The machine (with its pre-decoded execution tape), the machine memory
/// buffer, and the analysis slot tables are all set up once and reused
/// across the whole sweep: per-input work is proportional to the
/// instructions executed, not to sweep-setup.
///
/// # Errors
///
/// Propagates [`MachineError`] from the underlying interpreter.
pub fn analyze_with_shadow<R: Real>(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<Report, MachineError> {
    let mut analysis = Herbgrind::<R>::new(config.clone());
    let machine = Machine::new(program)
        .with_step_limit(config.step_limit)
        .with_deadline_millis(config.deadline_millis);
    let mut memory = Vec::new();
    for input in inputs {
        machine.run_traced_reusing(input, &mut analysis, &mut memory)?;
    }
    Ok(analysis.report())
}

/// Runs a program under the analysis with the input sweep sharded across
/// threads ([`AnalysisConfig::threads`]), using the default [`BigFloat`]
/// shadow reals.
///
/// Inputs are split into contiguous chunks, each chunk is analyzed on its own
/// thread, and the per-shard records are merged in input order
/// ([`Herbgrind::merge`]). The resulting [`Report`] is bit-identical to the
/// serial [`analyze`] for every thread count.
///
/// # Errors
///
/// Propagates [`MachineError`] from the underlying interpreter. When several
/// shards fail, the error of the earliest failing input is returned — the
/// same error serial analysis stops with.
pub fn analyze_parallel(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<Report, MachineError> {
    analyze_parallel_with_shadow::<BigFloat>(program, inputs, config)
}

/// Runs the sharded analysis with an explicit shadow-real type; see
/// [`analyze_parallel`].
///
/// # Errors
///
/// Propagates [`MachineError`] from the underlying interpreter.
pub fn analyze_parallel_with_shadow<R: Real + Send>(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<Report, MachineError> {
    let threads = config.effective_threads(inputs.len());
    if threads <= 1 || inputs.len() <= 1 {
        return analyze_with_shadow::<R>(program, inputs, config);
    }
    // Decode the execution tape once; shard machines are clones that share
    // it (`Machine` holds the tape behind an `Arc`), so an N-thread sweep
    // pays O(program) decode instead of O(N × program). The balanced
    // partition hands every thread a shard (chunk lengths differ by at most
    // one), where ceil-division chunking used to leave threads idle whenever
    // the sweep length was not a near-multiple of the thread count.
    let shared = Machine::new(program)
        .with_step_limit(config.step_limit)
        .with_deadline_millis(config.deadline_millis);
    let shards: Vec<Result<Herbgrind<R>, MachineError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = balanced_chunks(inputs, threads)
            .into_iter()
            .map(|chunk| {
                let machine = shared.clone();
                scope.spawn(move || {
                    let mut analysis = Herbgrind::<R>::new(config.clone());
                    let mut memory = Vec::new();
                    for input in chunk {
                        machine.run_traced_reusing(input, &mut analysis, &mut memory)?;
                    }
                    Ok(analysis)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("analysis shard panicked"))
            .collect()
    });
    // Merge in shard (= input) order; the earliest shard error is the error
    // the serial sweep would have stopped with, since chunks are contiguous
    // and each shard processes its inputs in order. When several shards
    // fail, this `?`-in-shard-order fold deterministically selects the
    // failing shard holding the lowest input index — the thread-level mirror
    // of `probe_local_error`'s lowest-failed-lane rule — regardless of which
    // thread finished (or failed) first.
    let mut merged: Option<Herbgrind<R>> = None;
    for shard in shards {
        let shard = shard?;
        match &mut merged {
            Some(accumulated) => accumulated.merge(shard),
            None => merged = Some(shard),
        }
    }
    let merged = merged.unwrap_or_else(|| Herbgrind::<R>::new(config.clone()));
    Ok(merged.report())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test assertions may unwrap freely

    use super::*;
    use fpcore::parse_core;
    use fpvm::compile_core;

    fn run_analysis(src: &str, inputs: &[Vec<f64>]) -> Report {
        let core = parse_core(src).expect("parse");
        let program = compile_core(&core, Default::default()).expect("compile");
        analyze(&program, inputs, &AnalysisConfig::default()).expect("analysis")
    }

    #[test]
    fn accurate_programs_produce_clean_reports() {
        let report = run_analysis(
            "(FPCore (x y) (sqrt (+ (* x x) (* y y))))",
            &[vec![3.0, 4.0], vec![1.0, 1.0], vec![0.5, 0.25]],
        );
        assert!(!report.has_significant_error(), "{}", report.to_text());
    }

    #[test]
    fn cancellation_is_detected_and_attributed() {
        // sqrt(x+1) - sqrt(x) for large x: the subtraction is the root cause.
        let inputs: Vec<Vec<f64>> = (0..30).map(|i| vec![10f64.powi(i)]).collect();
        let report = run_analysis("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))", &inputs);
        assert!(report.has_significant_error());
        let spot = &report.spots[0];
        assert!(spot.erroneous > 0);
        assert!(!spot.root_causes.is_empty());
        let cause = &spot.root_causes[0];
        assert!(
            cause.fpcore.contains("(- (sqrt"),
            "unexpected root cause {}",
            cause.fpcore
        );
    }

    #[test]
    fn influences_flow_through_later_operations() {
        // The error is introduced by the subtraction but observed only after
        // passing through a multiplication; the root cause must still be the
        // subtraction expression.
        let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![10f64.powi(i), 3.0]).collect();
        let report = run_analysis("(FPCore (x k) (* (- (+ x 1) x) k))", &inputs);
        assert!(report.has_significant_error());
        let cause = &report.spots[0].root_causes[0];
        assert!(cause.fpcore.contains('-'), "{}", cause.fpcore);
    }

    #[test]
    fn branch_divergence_is_a_spot() {
        // The PID-controller pattern: a loop counter incremented by 0.2
        // iterates once too many for some bounds. The branch is a spot and it
        // is influenced by the erroneous increment.
        let core =
            parse_core("(FPCore (n) (while (< t n) ((t 0 (+ t 0.2)) (c 0 (+ c 1))) c))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let config = AnalysisConfig::default().with_local_error_threshold(1.0);
        let report = analyze(&program, &[vec![10.0]], &config).unwrap();
        assert!(report.branch_divergences > 0, "{}", report.to_text());
        let branch_spot = report
            .spots
            .iter()
            .find(|s| s.kind_label == "Compare")
            .expect("branch spot present");
        assert!(branch_spot.erroneous > 0);
    }

    #[test]
    fn nan_outputs_have_maximal_error() {
        // A NaN reaching an output is reported with maximal (64-bit) error
        // even when the shadow execution also produces NaN, as in the
        // paper's Gram-Schmidt case study.
        let report = run_analysis("(FPCore (x) (sqrt x))", &[vec![-1.0]]);
        assert!(report.has_significant_error());
        assert!(report.spots[0].max_error_bits >= 60.0);
        // But a NaN that never reaches a spot (the accurate branch is taken)
        // is not reported.
        let report = run_analysis("(FPCore (x) (if (< x 0) 1 (sqrt x)))", &[vec![4.0]]);
        assert!(!report.has_significant_error());
    }

    #[test]
    fn compensation_is_not_reported_as_a_root_cause() {
        // Fast2Sum: s = a + b; e = b - (s - a); the compensating term e is
        // exactly zero in the reals, so the operations that extract it have
        // huge local error but must not surface as root causes. A genuinely
        // erroneous computation (`bad`) makes the output a real spot so that
        // influences are recorded at all.
        let src = "(FPCore (a b)
            (let* ((s (+ a b)) (t (- s a)) (e (- b t)) (r (+ s e))
                   (bad (- (+ a 1) a)))
              (* r bad)))";
        let core = parse_core(src).unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let inputs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![10f64.powi(i), 1.0 + (i as f64) * 0.125])
            .collect();
        let with_detection = analyze(&program, &inputs, &AnalysisConfig::default()).unwrap();
        let without_detection = analyze(
            &program,
            &inputs,
            &AnalysisConfig::default().with_compensation_detection(false),
        )
        .unwrap();
        assert!(with_detection.compensations_detected > 0);
        assert!(with_detection.has_significant_error());
        // With detection the compensation machinery does not appear among
        // the root causes; without it, it shows up as extra false positives.
        let clean_causes: usize = with_detection
            .spots
            .iter()
            .map(|s| s.root_causes.len())
            .sum();
        let noisy_causes: usize = without_detection
            .spots
            .iter()
            .map(|s| s.root_causes.len())
            .sum();
        assert!(clean_causes > 0);
        assert!(
            clean_causes < noisy_causes,
            "{clean_causes} vs {noisy_causes}"
        );
    }

    #[test]
    fn fpdebug_configuration_reports_single_operations() {
        let inputs: Vec<Vec<f64>> = (0..25).map(|i| vec![10f64.powi(i)]).collect();
        let core = parse_core("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let report = analyze(&program, &inputs, &AnalysisConfig::fpdebug_like()).unwrap();
        assert!(report.has_significant_error());
        let cause = &report.spots[0].root_causes[0];
        // Depth-1 expressions contain exactly one operation.
        assert_eq!(cause.symbolic.operation_count(), 1, "{}", cause.fpcore);
    }

    #[test]
    fn reports_accumulate_across_runs_and_reset_shadows() {
        let core = parse_core("(FPCore (x) (- (+ x 1) x))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let mut analysis = Herbgrind::<BigFloat>::new(AnalysisConfig::default());
        let machine = Machine::new(&program);
        for i in 0..10 {
            machine
                .run_traced(&[10f64.powi(i * 2)], &mut analysis)
                .unwrap();
        }
        assert_eq!(analysis.runs(), 10);
        let report = analysis.report();
        assert_eq!(report.total_runs, 10);
        assert!(report.spots.iter().any(|s| s.total == 10));
    }

    #[test]
    fn concurrent_analyses_with_different_precisions_do_not_interfere() {
        // Regression test for the shadow-precision race: precision used to be
        // set through a process-global atomic, so two concurrent analyses
        // with different `shadow_precision` values corrupted each other.
        // Precision is now threaded through the shadow-value constructors.
        let core = parse_core("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let inputs: Vec<Vec<f64>> = (0..12).map(|i| vec![10f64.powi(i)]).collect();
        let lo = AnalysisConfig {
            shadow_precision: 64,
            ..AnalysisConfig::default()
        };
        let hi = AnalysisConfig {
            shadow_precision: 1024,
            ..AnalysisConfig::default()
        };
        let serial_lo = format!("{:?}", analyze(&program, &inputs, &lo).unwrap());
        let serial_hi = format!("{:?}", analyze(&program, &inputs, &hi).unwrap());
        let (runs_lo, runs_hi) = std::thread::scope(|scope| {
            let low = scope.spawn(|| {
                (0..4)
                    .map(|_| format!("{:?}", analyze(&program, &inputs, &lo).unwrap()))
                    .collect::<Vec<_>>()
            });
            let high = scope.spawn(|| {
                (0..4)
                    .map(|_| format!("{:?}", analyze(&program, &inputs, &hi).unwrap()))
                    .collect::<Vec<_>>()
            });
            (low.join().unwrap(), high.join().unwrap())
        });
        for run in runs_lo {
            assert_eq!(run, serial_lo, "low-precision analysis was corrupted");
        }
        for run in runs_hi {
            assert_eq!(run, serial_hi, "high-precision analysis was corrupted");
        }
    }

    #[test]
    fn balanced_chunks_fill_every_worker() {
        // The chunking regression: ceil-division produced fewer chunks than
        // workers for awkward lengths (9 items, 8 workers → 5 chunks).
        for (len, parts) in [(9usize, 8usize), (5, 4), (17, 13), (8, 8), (3, 8), (40, 3)] {
            let items: Vec<usize> = (0..len).collect();
            let chunks = balanced_chunks(&items, parts);
            assert_eq!(chunks.len(), parts.min(len), "{len} items, {parts} parts");
            assert!(chunks.iter().all(|c| !c.is_empty()));
            // Contiguous, in order, lengths within one of each other.
            let flat: Vec<usize> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
            assert_eq!(flat, items);
            let min = chunks.iter().map(|c| c.len()).min().unwrap();
            let max = chunks.iter().map(|c| c.len()).max().unwrap();
            assert!(max - min <= 1, "{len} items, {parts} parts: {min}..{max}");
            // The longest chunks come first, so chunk 0's length bounds the
            // batched engine's pass count.
            assert_eq!(chunks[0].len(), max);
        }
        assert_eq!(balanced_chunks(&[] as &[u8], 4).len(), 1);
        assert!(balanced_chunks(&[] as &[u8], 4)[0].is_empty());
    }

    #[test]
    fn parallel_analysis_fills_all_threads_at_awkward_lengths() {
        // 9 inputs across 8 threads: every thread gets a shard and the merged
        // report is still bit-identical to serial.
        let core = parse_core("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let inputs: Vec<Vec<f64>> = (0..9).map(|i| vec![10f64.powi(i * 3)]).collect();
        let serial = analyze(
            &program,
            &inputs,
            &AnalysisConfig::default().with_threads(1),
        )
        .unwrap();
        let parallel = analyze_parallel(
            &program,
            &inputs,
            &AnalysisConfig::default().with_threads(8),
        )
        .unwrap();
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }

    #[test]
    fn parallel_analysis_is_bit_identical_to_serial() {
        let core = parse_core("(FPCore (x y) (- (sqrt (+ (* x x) (* y y))) x))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let inputs: Vec<Vec<f64>> = (1..40)
            .map(|i| vec![0.25 / i as f64, 1e-9 / i as f64])
            .collect();
        let serial = analyze(&program, &inputs, &AnalysisConfig::default()).unwrap();
        assert!(serial.has_significant_error());
        for threads in [1usize, 2, 3, 8] {
            let config = AnalysisConfig::default().with_threads(threads);
            let parallel = analyze_parallel(&program, &inputs, &config).unwrap();
            assert_eq!(
                format!("{serial:?}"),
                format!("{parallel:?}"),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn merging_shard_analyses_matches_one_sweep() {
        let core = parse_core("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let inputs: Vec<Vec<f64>> = (0..30).map(|i| vec![10f64.powi(i)]).collect();
        let config = AnalysisConfig::default();
        let machine = Machine::new(&program);

        let mut whole = Herbgrind::<BigFloat>::new(config.clone());
        for input in &inputs {
            machine.run_traced(input, &mut whole).unwrap();
        }

        let mut merged: Option<Herbgrind<BigFloat>> = None;
        for chunk in inputs.chunks(7) {
            let mut shard = Herbgrind::<BigFloat>::new(config.clone());
            for input in chunk {
                machine.run_traced(input, &mut shard).unwrap();
            }
            match &mut merged {
                Some(acc) => acc.merge(shard),
                None => merged = Some(shard),
            }
        }
        let merged = merged.unwrap();
        assert_eq!(merged.runs(), whole.runs());
        assert_eq!(
            format!("{:?}", merged.report()),
            format!("{:?}", whole.report())
        );
    }

    #[test]
    fn parallel_analysis_propagates_the_earliest_machine_error() {
        // A step budget small enough that every input fails: serial stops at
        // the first input, and the parallel path must surface the same error.
        let core =
            parse_core("(FPCore (n) (while (< t n) ((t 0 (+ t 0.125)) (c 0 (+ c 1))) c))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let inputs: Vec<Vec<f64>> = (1..=8).map(|n| vec![n as f64 * 100.0]).collect();
        let config = AnalysisConfig {
            step_limit: 10,
            ..AnalysisConfig::default()
        };
        let serial_err = analyze(&program, &inputs, &config).unwrap_err();
        let parallel_err =
            analyze_parallel(&program, &inputs, &config.clone().with_threads(4)).unwrap_err();
        assert_eq!(format!("{serial_err:?}"), format!("{parallel_err:?}"));
    }

    #[test]
    fn doubledouble_shadow_detects_the_same_cancellation() {
        let core = parse_core("(FPCore (x) (- (+ x 1) x))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![10f64.powi(i)]).collect();
        let report = analyze_with_shadow::<shadowreal::DoubleDouble>(
            &program,
            &inputs,
            &AnalysisConfig::default(),
        )
        .unwrap();
        assert!(report.has_significant_error());
    }
}

//! Input characteristics (§4.4).
//!
//! For every symbolic expression, the analysis summarizes the values its
//! variables took: once over *all* executions of the operation, and once over
//! only the executions whose local error exceeded the threshold. The summary
//! is modular; the three kinds shipped with Herbgrind are reproduced here as
//! [`RangeKind`] configurations of a single incremental [`VariableSummary`].

use crate::config::RangeKind;
use crate::symbolic::{MergeAssignment, MergeOrigin, VarAssignment, VarOrigin};
use std::collections::BTreeMap;

/// An incrementally maintained summary of the values one variable has taken.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VariableSummary {
    /// Number of recorded values.
    pub count: u64,
    /// A representative example value (the first one recorded).
    pub example: Option<f64>,
    /// Minimum over all values (when ranges are tracked).
    pub min: Option<f64>,
    /// Maximum over all values (when ranges are tracked).
    pub max: Option<f64>,
    /// Minimum over negative values only (when sign-split ranges are tracked).
    pub neg_min: Option<f64>,
    /// Maximum over negative values only.
    pub neg_max: Option<f64>,
    /// Minimum over positive values only.
    pub pos_min: Option<f64>,
    /// Maximum over positive values only.
    pub pos_max: Option<f64>,
}

fn merge_min(slot: &mut Option<f64>, value: f64) {
    *slot = Some(match *slot {
        Some(cur) => cur.min(value),
        None => value,
    });
}

fn merge_max(slot: &mut Option<f64>, value: f64) {
    *slot = Some(match *slot {
        Some(cur) => cur.max(value),
        None => value,
    });
}

impl VariableSummary {
    /// Records one observed value.
    pub fn record(&mut self, value: f64, kind: RangeKind) {
        self.count += 1;
        if self.example.is_none() {
            self.example = Some(value);
        }
        if value.is_nan() {
            return;
        }
        match kind {
            RangeKind::None => {}
            RangeKind::Single => {
                merge_min(&mut self.min, value);
                merge_max(&mut self.max, value);
            }
            RangeKind::SignSplit => {
                merge_min(&mut self.min, value);
                merge_max(&mut self.max, value);
                if value < 0.0 {
                    merge_min(&mut self.neg_min, value);
                    merge_max(&mut self.neg_max, value);
                } else {
                    merge_min(&mut self.pos_min, value);
                    merge_max(&mut self.pos_max, value);
                }
            }
        }
    }

    /// Merges another summary into this one (used when a variable inherits
    /// the history of the variable or constant it generalized).
    pub fn merge(&mut self, other: &VariableSummary) {
        self.count += other.count;
        if self.example.is_none() {
            self.example = other.example;
        }
        for (mine, theirs) in [
            (&mut self.min, other.min),
            (&mut self.neg_min, other.neg_min),
            (&mut self.pos_min, other.pos_min),
        ] {
            if let Some(v) = theirs {
                merge_min(mine, v);
            }
        }
        for (mine, theirs) in [
            (&mut self.max, other.max),
            (&mut self.neg_max, other.neg_max),
            (&mut self.pos_max, other.pos_max),
        ] {
            if let Some(v) = theirs {
                merge_max(mine, v);
            }
        }
    }

    /// The precondition clauses this summary contributes for a variable named
    /// `name`, as FPCore text fragments (used in the `:pre` of reports).
    pub fn precondition_clauses(&self, name: &str, kind: RangeKind) -> Vec<String> {
        match kind {
            RangeKind::None => Vec::new(),
            RangeKind::Single => match (self.min, self.max) {
                (Some(lo), Some(hi)) => vec![format!("(<= {lo:e} {name} {hi:e})")],
                _ => Vec::new(),
            },
            RangeKind::SignSplit => {
                let mut clauses = Vec::new();
                if let (Some(lo), Some(hi)) = (self.neg_min, self.neg_max) {
                    clauses.push(format!("(<= {lo:e} {name} {hi:e})"));
                }
                if let (Some(lo), Some(hi)) = (self.pos_min, self.pos_max) {
                    clauses.push(format!("(<= {lo:e} {name} {hi:e})"));
                }
                if clauses.len() == 2 {
                    // Negative and positive bands are alternatives.
                    vec![format!("(or {} {})", clauses[0], clauses[1])]
                } else if clauses.len() == 1 {
                    clauses
                } else if let (Some(lo), Some(hi)) = (self.min, self.max) {
                    vec![format!("(<= {lo:e} {name} {hi:e})")]
                } else {
                    Vec::new()
                }
            }
        }
    }
}

/// The per-expression input characteristics: one summary per variable, for
/// all executions and for high-local-error executions separately (§4.4: "one
/// for all inputs that the expression is called on, and one for all inputs
/// that it has high error on").
#[derive(Clone, Debug, Default)]
pub struct InputCharacteristics {
    /// Summaries over every execution.
    pub total: BTreeMap<usize, VariableSummary>,
    /// Summaries over the executions with local error above the threshold.
    pub problematic: BTreeMap<usize, VariableSummary>,
}

impl InputCharacteristics {
    /// Rewires the summaries after an anti-unification pass: each variable of
    /// the new symbolic expression inherits the summary of its origin, then
    /// records the newly observed value.
    ///
    /// `erroneous` is whether the current execution exceeded the local-error
    /// threshold; `had_prior_erroneous` is whether *any earlier* execution of
    /// the operation did. The latter governs whether a constant position that
    /// just generalized contributes its constant to the problematic summary:
    /// the constant was the value at every earlier execution, so it belongs
    /// there exactly when one of those executions was erroneous. (Defining it
    /// this way — rather than by the erroneousness of the generalizing
    /// execution — is what makes the problematic ranges exactly mergeable
    /// across input shards; see [`InputCharacteristics::merged`].)
    pub fn apply_assignments(
        &mut self,
        assignments: &[VarAssignment],
        kind: RangeKind,
        erroneous: bool,
        had_prior_erroneous: bool,
    ) {
        if assignments.is_empty() {
            return;
        }
        if self.try_apply_in_place(assignments, kind, erroneous) {
            return;
        }
        let mut total = BTreeMap::new();
        let mut problematic = BTreeMap::new();
        for a in assignments {
            let mut summary = match &a.origin {
                VarOrigin::FromVar(prev) => self.total.get(prev).cloned().unwrap_or_default(),
                VarOrigin::FromConst(c) => {
                    let mut s = VariableSummary::default();
                    s.record(*c, kind);
                    s
                }
            };
            summary.record(a.value, kind);
            total.insert(a.var, summary);

            let mut prob = match &a.origin {
                VarOrigin::FromVar(prev) => self.problematic.get(prev).cloned(),
                VarOrigin::FromConst(c) if had_prior_erroneous => {
                    let mut s = VariableSummary::default();
                    s.record(*c, kind);
                    Some(s)
                }
                VarOrigin::FromConst(_) => None,
            };
            if erroneous {
                prob.get_or_insert_with(VariableSummary::default)
                    .record(a.value, kind);
            }
            if let Some(prob) = prob {
                problematic.insert(a.var, prob);
            }
        }
        self.total = total;
        self.problematic = problematic;
    }

    /// The steady-state fast path of
    /// [`InputCharacteristics::apply_assignments`]: once a generalization has
    /// saturated, every assignment keeps its variable (`FromVar(v)` with the
    /// same index `v`) and the assignment set covers exactly the tracked
    /// variables. Inheriting summaries is then the identity rewiring, so the
    /// new values can be recorded in place — no map rebuild, no summary
    /// clones, no allocation. Bit-identical to the rebuild: the inherited
    /// summaries are the existing entries, recording mutates them exactly as
    /// the rebuild records into their clones, and the key sets are unchanged
    /// (`problematic ⊆ total` is an invariant, so no stale problematic entry
    /// can survive that the rebuild would have dropped).
    ///
    /// Returns false (without touching anything) when any variable
    /// generalized this round, leaving the rebuild to handle inheritance.
    fn try_apply_in_place(
        &mut self,
        assignments: &[VarAssignment],
        kind: RangeKind,
        erroneous: bool,
    ) -> bool {
        if assignments.len() != self.total.len() {
            return false;
        }
        for a in assignments {
            match a.origin {
                VarOrigin::FromVar(prev) if prev == a.var => {}
                _ => return false,
            }
            if !self.total.contains_key(&a.var) {
                return false;
            }
        }
        for a in assignments {
            self.total
                .get_mut(&a.var)
                .expect("checked above")
                .record(a.value, kind);
            if erroneous {
                self.problematic
                    .entry(a.var)
                    .or_default()
                    .record(a.value, kind);
            }
        }
        true
    }

    /// Group variant of [`InputCharacteristics::apply_assignments`]: folds a
    /// convergent lane group's per-lane observations into the lanes'
    /// summaries **in lane order**. Each lane's update is exactly the one
    /// `apply_assignments` performs (the per-lane characteristics are merged
    /// across lanes only at shard-merge time, which is what keeps batched
    /// reports bit-identical to serial ones); the group entry point exists so
    /// the batched record layer drives the whole group through one call —
    /// and through the in-place fast path lane after lane.
    pub fn apply_assignments_group<'a>(
        lanes: impl Iterator<
            Item = (
                &'a mut InputCharacteristics,
                &'a [VarAssignment],
                bool,
                bool,
            ),
        >,
        kind: RangeKind,
    ) {
        for (characteristics, assignments, erroneous, had_prior_erroneous) in lanes {
            characteristics.apply_assignments(assignments, kind, erroneous, had_prior_erroneous);
        }
    }

    /// Combines the characteristics of two input shards whose generalizers
    /// were just merged; `assignments` comes from
    /// [`crate::symbolic::Generalizer::merge`] and maps every variable of the
    /// merged symbolic expression to its origin on each side.
    ///
    /// `left_had_erroneous` / `right_had_erroneous` say whether the
    /// respective shard observed any erroneous execution of the operation:
    /// a position that stayed constant within a shard belongs in the merged
    /// problematic summary exactly when that shard had erroneous executions
    /// (its constant was the value at every one of them). The reported
    /// quantities — range endpoints and the example value — come out
    /// identical to what a single sequential pass over the concatenated
    /// inputs produces.
    pub fn merged(
        left: &InputCharacteristics,
        right: &InputCharacteristics,
        assignments: &[MergeAssignment],
        kind: RangeKind,
        left_had_erroneous: bool,
        right_had_erroneous: bool,
    ) -> InputCharacteristics {
        let mut out = InputCharacteristics::default();
        for a in assignments {
            let combine = |maps: [(&BTreeMap<usize, VariableSummary>, MergeOrigin, bool); 2]| {
                let mut summary: Option<VariableSummary> = None;
                for (map, origin, include_const) in maps {
                    let contribution = match origin {
                        MergeOrigin::Var(v) => map.get(&v).cloned(),
                        MergeOrigin::Const(c) if include_const => {
                            let mut s = VariableSummary::default();
                            s.record(c, kind);
                            Some(s)
                        }
                        MergeOrigin::Const(_) | MergeOrigin::Opaque | MergeOrigin::Absent => None,
                    };
                    if let Some(contribution) = contribution {
                        match &mut summary {
                            Some(s) => s.merge(&contribution),
                            None => summary = Some(contribution),
                        }
                    }
                }
                summary
            };
            if let Some(total) =
                combine([(&left.total, a.left, true), (&right.total, a.right, true)])
            {
                out.total.insert(a.var, total);
            }
            if let Some(problematic) = combine([
                (&left.problematic, a.left, left_had_erroneous),
                (&right.problematic, a.right, right_had_erroneous),
            ]) {
                out.problematic.insert(a.var, problematic);
            }
        }
        out
    }

    /// Records an execution of an expression with no variables (all
    /// constants so far); only counts are meaningful.
    pub fn record_constant_execution(&mut self, erroneous: bool) {
        // Nothing to record per-variable, but keep the problematic map in
        // sync so reports can distinguish "never erroneous" from "no data".
        let _ = erroneous;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_kind_tracks_only_examples() {
        let mut s = VariableSummary::default();
        s.record(3.0, RangeKind::None);
        s.record(-5.0, RangeKind::None);
        assert_eq!(s.example, Some(3.0));
        assert_eq!(s.count, 2);
        assert_eq!(s.min, None);
        assert!(s.precondition_clauses("x", RangeKind::None).is_empty());
    }

    #[test]
    fn single_range_tracks_min_and_max() {
        let mut s = VariableSummary::default();
        for v in [2.0, -7.0, 9.5, 0.0] {
            s.record(v, RangeKind::Single);
        }
        assert_eq!(s.min, Some(-7.0));
        assert_eq!(s.max, Some(9.5));
        let clauses = s.precondition_clauses("x", RangeKind::Single);
        assert_eq!(clauses.len(), 1);
        assert!(clauses[0].contains("x"));
    }

    #[test]
    fn sign_split_separates_bands() {
        let mut s = VariableSummary::default();
        for v in [2.0, -7.0, 9.5, -0.25] {
            s.record(v, RangeKind::SignSplit);
        }
        assert_eq!(s.neg_min, Some(-7.0));
        assert_eq!(s.neg_max, Some(-0.25));
        assert_eq!(s.pos_min, Some(2.0));
        assert_eq!(s.pos_max, Some(9.5));
        let clauses = s.precondition_clauses("x", RangeKind::SignSplit);
        assert_eq!(clauses.len(), 1);
        assert!(clauses[0].starts_with("(or "));
    }

    #[test]
    fn nan_values_do_not_poison_ranges() {
        let mut s = VariableSummary::default();
        s.record(f64::NAN, RangeKind::SignSplit);
        s.record(1.0, RangeKind::SignSplit);
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.count, 2);
    }

    #[test]
    fn merge_combines_ranges() {
        let mut a = VariableSummary::default();
        a.record(1.0, RangeKind::Single);
        let mut b = VariableSummary::default();
        b.record(-4.0, RangeKind::Single);
        a.merge(&b);
        assert_eq!(a.min, Some(-4.0));
        assert_eq!(a.max, Some(1.0));
        assert_eq!(a.count, 2);
    }

    #[test]
    fn assignments_inherit_histories() {
        use crate::symbolic::{VarAssignment, VarOrigin};
        let mut chars = InputCharacteristics::default();
        // First generalization: a constant 3.0 position becomes variable 0
        // with new value 5.0. The earlier executions (which all held 3.0)
        // included an erroneous one, so 3.0 belongs in the problematic
        // summary alongside the new erroneous value.
        chars.apply_assignments(
            &[VarAssignment {
                var: 0,
                origin: VarOrigin::FromConst(3.0),
                value: 5.0,
            }],
            RangeKind::Single,
            true,
            true,
        );
        assert_eq!(chars.total[&0].min, Some(3.0));
        assert_eq!(chars.total[&0].max, Some(5.0));
        assert_eq!(chars.problematic[&0].count, 2);
        // Second pass: variable 0 persists with a new value 7.0, not erroneous.
        chars.apply_assignments(
            &[VarAssignment {
                var: 0,
                origin: VarOrigin::FromVar(0),
                value: 7.0,
            }],
            RangeKind::Single,
            false,
            true,
        );
        assert_eq!(chars.total[&0].max, Some(7.0));
        // The problematic summary did not absorb the non-erroneous value.
        assert_eq!(chars.problematic[&0].max, Some(5.0));
    }

    #[test]
    fn clean_history_constants_stay_out_of_problematic_summaries() {
        use crate::symbolic::{VarAssignment, VarOrigin};
        let mut chars = InputCharacteristics::default();
        // The constant 3.0 generalizes on an erroneous execution, but none of
        // the earlier executions (which held 3.0) were erroneous: only the
        // new value belongs in the problematic summary.
        chars.apply_assignments(
            &[VarAssignment {
                var: 0,
                origin: VarOrigin::FromConst(3.0),
                value: 5.0,
            }],
            RangeKind::Single,
            true,
            false,
        );
        assert_eq!(chars.total[&0].count, 2);
        assert_eq!(chars.problematic[&0].count, 1);
        assert_eq!(chars.problematic[&0].example, Some(5.0));
    }

    #[test]
    fn merged_characteristics_union_ranges_with_left_precedence() {
        use crate::symbolic::{MergeAssignment, MergeOrigin};
        // Left shard: variable 0 saw [1, 4] overall, [4, 4] on erroneous
        // executions. Right shard kept the position constant at 9.0 and had
        // erroneous executions.
        let mut left = InputCharacteristics::default();
        let mut l = VariableSummary::default();
        l.record(1.0, RangeKind::Single);
        l.record(4.0, RangeKind::Single);
        left.total.insert(0, l);
        let mut lp = VariableSummary::default();
        lp.record(4.0, RangeKind::Single);
        left.problematic.insert(0, lp);
        let right = InputCharacteristics::default();
        let merged = InputCharacteristics::merged(
            &left,
            &right,
            &[MergeAssignment {
                var: 0,
                left: MergeOrigin::Var(0),
                right: MergeOrigin::Const(9.0),
            }],
            RangeKind::Single,
            true,
            true,
        );
        assert_eq!(merged.total[&0].min, Some(1.0));
        assert_eq!(merged.total[&0].max, Some(9.0));
        assert_eq!(merged.total[&0].example, Some(1.0));
        assert_eq!(merged.problematic[&0].min, Some(4.0));
        assert_eq!(merged.problematic[&0].max, Some(9.0));
        // A right shard with no erroneous executions keeps its constant out
        // of the problematic summary.
        let clean = InputCharacteristics::merged(
            &left,
            &right,
            &[MergeAssignment {
                var: 0,
                left: MergeOrigin::Var(0),
                right: MergeOrigin::Const(9.0),
            }],
            RangeKind::Single,
            true,
            false,
        );
        assert_eq!(clean.problematic[&0].max, Some(4.0));
    }
}

//! Input characteristics (§4.4).
//!
//! For every symbolic expression, the analysis summarizes the values its
//! variables took: once over *all* executions of the operation, and once over
//! only the executions whose local error exceeded the threshold. The summary
//! is modular; the three kinds shipped with Herbgrind are reproduced here as
//! [`RangeKind`] configurations of a single incremental [`VariableSummary`].

use crate::config::RangeKind;
use crate::symbolic::{VarAssignment, VarOrigin};
use std::collections::BTreeMap;

/// An incrementally maintained summary of the values one variable has taken.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VariableSummary {
    /// Number of recorded values.
    pub count: u64,
    /// A representative example value (the first one recorded).
    pub example: Option<f64>,
    /// Minimum over all values (when ranges are tracked).
    pub min: Option<f64>,
    /// Maximum over all values (when ranges are tracked).
    pub max: Option<f64>,
    /// Minimum over negative values only (when sign-split ranges are tracked).
    pub neg_min: Option<f64>,
    /// Maximum over negative values only.
    pub neg_max: Option<f64>,
    /// Minimum over positive values only.
    pub pos_min: Option<f64>,
    /// Maximum over positive values only.
    pub pos_max: Option<f64>,
}

fn merge_min(slot: &mut Option<f64>, value: f64) {
    *slot = Some(match *slot {
        Some(cur) => cur.min(value),
        None => value,
    });
}

fn merge_max(slot: &mut Option<f64>, value: f64) {
    *slot = Some(match *slot {
        Some(cur) => cur.max(value),
        None => value,
    });
}

impl VariableSummary {
    /// Records one observed value.
    pub fn record(&mut self, value: f64, kind: RangeKind) {
        self.count += 1;
        if self.example.is_none() {
            self.example = Some(value);
        }
        if value.is_nan() {
            return;
        }
        match kind {
            RangeKind::None => {}
            RangeKind::Single => {
                merge_min(&mut self.min, value);
                merge_max(&mut self.max, value);
            }
            RangeKind::SignSplit => {
                merge_min(&mut self.min, value);
                merge_max(&mut self.max, value);
                if value < 0.0 {
                    merge_min(&mut self.neg_min, value);
                    merge_max(&mut self.neg_max, value);
                } else {
                    merge_min(&mut self.pos_min, value);
                    merge_max(&mut self.pos_max, value);
                }
            }
        }
    }

    /// Merges another summary into this one (used when a variable inherits
    /// the history of the variable or constant it generalized).
    pub fn merge(&mut self, other: &VariableSummary) {
        self.count += other.count;
        if self.example.is_none() {
            self.example = other.example;
        }
        for (mine, theirs) in [
            (&mut self.min, other.min),
            (&mut self.neg_min, other.neg_min),
            (&mut self.pos_min, other.pos_min),
        ] {
            if let Some(v) = theirs {
                merge_min(mine, v);
            }
        }
        for (mine, theirs) in [
            (&mut self.max, other.max),
            (&mut self.neg_max, other.neg_max),
            (&mut self.pos_max, other.pos_max),
        ] {
            if let Some(v) = theirs {
                merge_max(mine, v);
            }
        }
    }

    /// The precondition clauses this summary contributes for a variable named
    /// `name`, as FPCore text fragments (used in the `:pre` of reports).
    pub fn precondition_clauses(&self, name: &str, kind: RangeKind) -> Vec<String> {
        match kind {
            RangeKind::None => Vec::new(),
            RangeKind::Single => match (self.min, self.max) {
                (Some(lo), Some(hi)) => vec![format!("(<= {lo:e} {name} {hi:e})")],
                _ => Vec::new(),
            },
            RangeKind::SignSplit => {
                let mut clauses = Vec::new();
                if let (Some(lo), Some(hi)) = (self.neg_min, self.neg_max) {
                    clauses.push(format!("(<= {lo:e} {name} {hi:e})"));
                }
                if let (Some(lo), Some(hi)) = (self.pos_min, self.pos_max) {
                    clauses.push(format!("(<= {lo:e} {name} {hi:e})"));
                }
                if clauses.len() == 2 {
                    // Negative and positive bands are alternatives.
                    vec![format!("(or {} {})", clauses[0], clauses[1])]
                } else if clauses.len() == 1 {
                    clauses
                } else if let (Some(lo), Some(hi)) = (self.min, self.max) {
                    vec![format!("(<= {lo:e} {name} {hi:e})")]
                } else {
                    Vec::new()
                }
            }
        }
    }
}

/// The per-expression input characteristics: one summary per variable, for
/// all executions and for high-local-error executions separately (§4.4: "one
/// for all inputs that the expression is called on, and one for all inputs
/// that it has high error on").
#[derive(Clone, Debug, Default)]
pub struct InputCharacteristics {
    /// Summaries over every execution.
    pub total: BTreeMap<usize, VariableSummary>,
    /// Summaries over the executions with local error above the threshold.
    pub problematic: BTreeMap<usize, VariableSummary>,
}

impl InputCharacteristics {
    /// Rewires the summaries after an anti-unification pass: each variable of
    /// the new symbolic expression inherits the summary of its origin, then
    /// records the newly observed value.
    pub fn apply_assignments(
        &mut self,
        assignments: &[VarAssignment],
        kind: RangeKind,
        erroneous: bool,
    ) {
        if assignments.is_empty() {
            return;
        }
        let rewire = |old: &BTreeMap<usize, VariableSummary>| -> BTreeMap<usize, VariableSummary> {
            let mut fresh = BTreeMap::new();
            for a in assignments {
                let mut summary = match &a.origin {
                    VarOrigin::FromVar(prev) => old.get(prev).cloned().unwrap_or_default(),
                    VarOrigin::FromConst(c) => {
                        let mut s = VariableSummary::default();
                        s.record(*c, kind);
                        s
                    }
                };
                summary.record(a.value, kind);
                fresh.insert(a.var, summary);
            }
            fresh
        };
        self.total = rewire(&self.total);
        if erroneous {
            self.problematic = rewire(&self.problematic);
        } else {
            // Problematic summaries keep their old variable numbering only
            // where origins map; conservatively rewire without recording.
            let mut fresh = BTreeMap::new();
            for a in assignments {
                if let VarOrigin::FromVar(prev) = &a.origin {
                    if let Some(s) = self.problematic.get(prev) {
                        fresh.insert(a.var, s.clone());
                    }
                }
            }
            self.problematic = fresh;
        }
    }

    /// Records an execution of an expression with no variables (all
    /// constants so far); only counts are meaningful.
    pub fn record_constant_execution(&mut self, erroneous: bool) {
        // Nothing to record per-variable, but keep the problematic map in
        // sync so reports can distinguish "never erroneous" from "no data".
        let _ = erroneous;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_kind_tracks_only_examples() {
        let mut s = VariableSummary::default();
        s.record(3.0, RangeKind::None);
        s.record(-5.0, RangeKind::None);
        assert_eq!(s.example, Some(3.0));
        assert_eq!(s.count, 2);
        assert_eq!(s.min, None);
        assert!(s.precondition_clauses("x", RangeKind::None).is_empty());
    }

    #[test]
    fn single_range_tracks_min_and_max() {
        let mut s = VariableSummary::default();
        for v in [2.0, -7.0, 9.5, 0.0] {
            s.record(v, RangeKind::Single);
        }
        assert_eq!(s.min, Some(-7.0));
        assert_eq!(s.max, Some(9.5));
        let clauses = s.precondition_clauses("x", RangeKind::Single);
        assert_eq!(clauses.len(), 1);
        assert!(clauses[0].contains("x"));
    }

    #[test]
    fn sign_split_separates_bands() {
        let mut s = VariableSummary::default();
        for v in [2.0, -7.0, 9.5, -0.25] {
            s.record(v, RangeKind::SignSplit);
        }
        assert_eq!(s.neg_min, Some(-7.0));
        assert_eq!(s.neg_max, Some(-0.25));
        assert_eq!(s.pos_min, Some(2.0));
        assert_eq!(s.pos_max, Some(9.5));
        let clauses = s.precondition_clauses("x", RangeKind::SignSplit);
        assert_eq!(clauses.len(), 1);
        assert!(clauses[0].starts_with("(or "));
    }

    #[test]
    fn nan_values_do_not_poison_ranges() {
        let mut s = VariableSummary::default();
        s.record(f64::NAN, RangeKind::SignSplit);
        s.record(1.0, RangeKind::SignSplit);
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.count, 2);
    }

    #[test]
    fn merge_combines_ranges() {
        let mut a = VariableSummary::default();
        a.record(1.0, RangeKind::Single);
        let mut b = VariableSummary::default();
        b.record(-4.0, RangeKind::Single);
        a.merge(&b);
        assert_eq!(a.min, Some(-4.0));
        assert_eq!(a.max, Some(1.0));
        assert_eq!(a.count, 2);
    }

    #[test]
    fn assignments_inherit_histories() {
        use crate::symbolic::{VarAssignment, VarOrigin};
        let mut chars = InputCharacteristics::default();
        // First generalization: a constant 3.0 position becomes variable 0
        // with new value 5.0.
        chars.apply_assignments(
            &[VarAssignment {
                var: 0,
                origin: VarOrigin::FromConst(3.0),
                value: 5.0,
            }],
            RangeKind::Single,
            true,
        );
        assert_eq!(chars.total[&0].min, Some(3.0));
        assert_eq!(chars.total[&0].max, Some(5.0));
        assert_eq!(chars.problematic[&0].count, 2);
        // Second pass: variable 0 persists with a new value 7.0, not erroneous.
        chars.apply_assignments(
            &[VarAssignment {
                var: 0,
                origin: VarOrigin::FromVar(0),
                value: 7.0,
            }],
            RangeKind::Single,
            false,
        );
        assert_eq!(chars.total[&0].max, Some(7.0));
        // The problematic summary did not absorb the non-erroneous value.
        assert_eq!(chars.problematic[&0].max, Some(5.0));
    }
}

//! Concrete expression traces (§4.3).
//!
//! Every floating-point value carries a *concrete expression*: the tree of
//! floating-point operations that produced it, with copies through memory
//! and data structures elided. Nodes are reference-counted and shared
//! between shadow values, exactly as the paper's implementation shares trace
//! nodes between copies (§6 "Sharing").

use fpvm::SourceLoc;
use shadowreal::RealOp;
use std::sync::Arc;

/// A node in a concrete expression trace.
#[derive(Clone, Debug)]
pub enum ConcreteExpr {
    /// A value that was not produced by a tracked floating-point operation:
    /// a program input, a constant, or an integer-derived value.
    Leaf {
        /// The double value observed.
        value: f64,
    },
    /// A floating-point operation.
    Node {
        /// The operation.
        op: RealOp,
        /// The double value the client computed here.
        value: f64,
        /// The operand traces.
        children: Vec<Arc<ConcreteExpr>>,
        /// The statement (program counter) that executed the operation.
        pc: usize,
        /// The source location of that statement.
        loc: SourceLoc,
    },
}

impl ConcreteExpr {
    /// Creates a leaf node.
    pub fn leaf(value: f64) -> Arc<ConcreteExpr> {
        Arc::new(ConcreteExpr::Leaf { value })
    }

    /// Creates an operation node.
    pub fn node(
        op: RealOp,
        value: f64,
        children: Vec<Arc<ConcreteExpr>>,
        pc: usize,
        loc: SourceLoc,
    ) -> Arc<ConcreteExpr> {
        Arc::new(ConcreteExpr::Node {
            op,
            value,
            children,
            pc,
            loc,
        })
    }

    /// The double value at this node.
    pub fn value(&self) -> f64 {
        match self {
            ConcreteExpr::Leaf { value } | ConcreteExpr::Node { value, .. } => *value,
        }
    }

    /// True if this is a leaf (input/constant) node.
    pub fn is_leaf(&self) -> bool {
        matches!(self, ConcreteExpr::Leaf { .. })
    }

    /// The depth of the trace in operation nodes (a leaf has depth 0).
    pub fn depth(&self) -> usize {
        match self {
            ConcreteExpr::Leaf { .. } => 0,
            ConcreteExpr::Node { children, .. } => {
                1 + children.iter().map(|c| c.depth()).max().unwrap_or(0)
            }
        }
    }

    /// The number of operation nodes in the trace.
    pub fn operation_count(&self) -> usize {
        match self {
            ConcreteExpr::Leaf { .. } => 0,
            ConcreteExpr::Node { children, .. } => {
                1 + children.iter().map(|c| c.operation_count()).sum::<usize>()
            }
        }
    }

    /// Returns a copy of the trace truncated to at most `max_depth` levels of
    /// operations; subtrees below the cut become leaves holding their value.
    ///
    /// This implements the maximum-expression-depth knob of Figures 5c/5d: a
    /// depth of 1 keeps only the top operation.
    pub fn truncate_to_depth(self: &Arc<ConcreteExpr>, max_depth: usize) -> Arc<ConcreteExpr> {
        if max_depth == 0 {
            return ConcreteExpr::leaf(self.value());
        }
        match self.as_ref() {
            ConcreteExpr::Leaf { .. } => Arc::clone(self),
            ConcreteExpr::Node {
                op,
                value,
                children,
                pc,
                loc,
            } => {
                if self.depth() <= max_depth {
                    return Arc::clone(self);
                }
                let truncated = children
                    .iter()
                    .map(|c| c.truncate_to_depth(max_depth - 1))
                    .collect();
                ConcreteExpr::node(*op, *value, truncated, *pc, loc.clone())
            }
        }
    }

    /// Structural equality bounded to `depth` levels (used by the
    /// approximate anti-unification of §6.1). Values are compared by bit
    /// pattern so that NaNs compare equal to themselves.
    pub fn equivalent_to_depth(&self, other: &ConcreteExpr, depth: usize) -> bool {
        if depth == 0 {
            return true;
        }
        match (self, other) {
            (ConcreteExpr::Leaf { value: a }, ConcreteExpr::Leaf { value: b }) => {
                a.to_bits() == b.to_bits()
            }
            (
                ConcreteExpr::Node {
                    op: op_a,
                    children: ch_a,
                    ..
                },
                ConcreteExpr::Node {
                    op: op_b,
                    children: ch_b,
                    ..
                },
            ) => {
                op_a == op_b
                    && ch_a.len() == ch_b.len()
                    && ch_a
                        .iter()
                        .zip(ch_b)
                        .all(|(a, b)| a.equivalent_to_depth(b, depth - 1))
            }
            _ => false,
        }
    }

    /// The source locations of every operation node, outermost first (the
    /// paper notes Herbgrind can provide source locations for each node of
    /// the extracted expression).
    pub fn locations(&self) -> Vec<SourceLoc> {
        let mut out = Vec::new();
        self.collect_locations(&mut out);
        out
    }

    fn collect_locations(&self, out: &mut Vec<SourceLoc>) {
        if let ConcreteExpr::Node { loc, children, .. } = self {
            out.push(loc.clone());
            for c in children {
                c.collect_locations(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Arc<ConcreteExpr> {
        // (sqrt(x*x + y*y)) - x  with x=3, y=4
        let x = ConcreteExpr::leaf(3.0);
        let y = ConcreteExpr::leaf(4.0);
        let xx = ConcreteExpr::node(
            RealOp::Mul,
            9.0,
            vec![x.clone(), x.clone()],
            0,
            SourceLoc::default(),
        );
        let yy = ConcreteExpr::node(
            RealOp::Mul,
            16.0,
            vec![y.clone(), y],
            1,
            SourceLoc::default(),
        );
        let sum = ConcreteExpr::node(RealOp::Add, 25.0, vec![xx, yy], 2, SourceLoc::default());
        let root = ConcreteExpr::node(RealOp::Sqrt, 5.0, vec![sum], 3, SourceLoc::default());
        ConcreteExpr::node(RealOp::Sub, 2.0, vec![root, x], 4, SourceLoc::default())
    }

    #[test]
    fn depth_and_operation_count() {
        let t = sample_trace();
        assert_eq!(t.depth(), 4);
        assert_eq!(t.operation_count(), 5);
        assert_eq!(t.value(), 2.0);
    }

    #[test]
    fn truncation_limits_depth() {
        let t = sample_trace();
        let shallow = t.truncate_to_depth(1);
        assert_eq!(shallow.depth(), 1);
        assert_eq!(shallow.value(), 2.0);
        // Children of the truncated node are leaves carrying the observed values.
        if let ConcreteExpr::Node { children, .. } = shallow.as_ref() {
            assert!(children.iter().all(|c| c.is_leaf()));
            assert_eq!(children[0].value(), 5.0);
            assert_eq!(children[1].value(), 3.0);
        } else {
            panic!("expected a node");
        }
        // Truncating deeper than the trace is the identity (same allocation).
        let same = t.truncate_to_depth(10);
        assert!(Arc::ptr_eq(&t, &same));
    }

    #[test]
    fn bounded_equivalence() {
        let a = sample_trace();
        let b = sample_trace();
        assert!(a.equivalent_to_depth(&b, 10));
        // A trace with a different leaf value differs at depth 5 but is
        // indistinguishable at depth 1 (same top operation).
        let x = ConcreteExpr::leaf(3.0);
        let different = ConcreteExpr::node(
            RealOp::Sub,
            2.0,
            vec![ConcreteExpr::leaf(5.0), x],
            4,
            SourceLoc::default(),
        );
        assert!(a.equivalent_to_depth(&different, 1));
        assert!(!a.equivalent_to_depth(&different, 2));
    }

    #[test]
    fn nan_leaves_compare_equal_to_themselves() {
        let a = ConcreteExpr::leaf(f64::NAN);
        let b = ConcreteExpr::leaf(f64::NAN);
        assert!(a.equivalent_to_depth(&b, 3));
    }

    #[test]
    fn sharing_is_by_reference() {
        let x = ConcreteExpr::leaf(1.5);
        let node = ConcreteExpr::node(
            RealOp::Add,
            3.0,
            vec![x.clone(), x.clone()],
            0,
            SourceLoc::default(),
        );
        if let ConcreteExpr::Node { children, .. } = node.as_ref() {
            assert!(Arc::ptr_eq(&children[0], &children[1]));
        }
    }

    #[test]
    fn locations_are_collected_outermost_first() {
        let t = sample_trace();
        let locs = t.locations();
        assert_eq!(locs.len(), 5);
    }
}

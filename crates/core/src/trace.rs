//! Concrete expression traces (§4.3).
//!
//! Every floating-point value carries a *concrete expression*: the tree of
//! floating-point operations that produced it, with copies through memory
//! and data structures elided. Nodes are reference-counted and shared
//! between shadow values, exactly as the paper's implementation shares trace
//! nodes between copies (§6 "Sharing").
//!
//! Two layers of sharing keep the tracing hot path cheap:
//!
//! * the most common constant leaves (`0.0`, `1.0`, `-1.0`, `2.0`) are
//!   process-wide statics, so constant-heavy programs never allocate for
//!   them;
//! * an [`ExprInterner`] hash-conses nodes per analysis shard, so repeated
//!   subtraces share one allocation and structural comparison can use
//!   pointer-identity fast paths before walking subtrees.

use fpvm::SourceLoc;
use shadowreal::{RealOp, MAX_ARITY};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// A node in a concrete expression trace.
#[derive(Clone, Debug)]
pub enum ConcreteExpr {
    /// A value that was not produced by a tracked floating-point operation:
    /// a program input, a constant, or an integer-derived value.
    Leaf {
        /// The double value observed.
        value: f64,
    },
    /// A floating-point operation.
    Node {
        /// The operation.
        op: RealOp,
        /// The double value the client computed here.
        value: f64,
        /// The operand traces, stored inline (arity is bounded by
        /// [`MAX_ARITY`], so a heap vector per node — one node per executed
        /// operation — would be pure allocator traffic).
        children: TraceChildren,
        /// The statement (program counter) that executed the operation.
        pc: usize,
        /// The source location of that statement, reference-counted: one
        /// trace node is built per executed operation, and cloning the
        /// location's strings into every node used to be the single largest
        /// allocation source on the tracing hot path (two heap strings per
        /// node, again on every truncation). The analysis interns each
        /// statement's location once and nodes share it.
        loc: Arc<SourceLoc>,
        /// Cached depth in operation nodes (`1 + max(children)`), stored at
        /// construction so depth-bounded truncation is O(1) per node instead
        /// of a repeated walk — which is exponential on traces with heavy
        /// sharing.
        depth: usize,
    },
}

/// A node's operand traces, stored inline. [`RealOp`] arity is bounded by
/// [`MAX_ARITY`] (3), so the operands fit in the node itself; the previous
/// `Vec` representation cost one heap allocation per traced operation.
/// Dereferences to `[Arc<ConcreteExpr>]`, so all slice operations work
/// directly.
#[derive(Clone, Debug)]
pub enum TraceChildren {
    /// No operands (not produced by any current operation; kept for
    /// totality).
    Zero,
    /// A unary operation's operand.
    One([Arc<ConcreteExpr>; 1]),
    /// A binary operation's operands.
    Two([Arc<ConcreteExpr>; 2]),
    /// A ternary operation's operands (`fma`).
    Three([Arc<ConcreteExpr>; 3]),
}

impl TraceChildren {
    /// Builds the inline operand storage from borrowed operand traces — the
    /// hot-path constructor, cloning each `Arc` straight into place with no
    /// intermediate vector.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_ARITY`] operands are supplied.
    pub fn from_refs(children: &[&Arc<ConcreteExpr>]) -> TraceChildren {
        match children {
            [] => TraceChildren::Zero,
            [a] => TraceChildren::One([Arc::clone(a)]),
            [a, b] => TraceChildren::Two([Arc::clone(a), Arc::clone(b)]),
            [a, b, c] => TraceChildren::Three([Arc::clone(a), Arc::clone(b), Arc::clone(c)]),
            _ => panic!("operation arity exceeds MAX_ARITY"),
        }
    }
}

impl std::ops::Deref for TraceChildren {
    type Target = [Arc<ConcreteExpr>];
    fn deref(&self) -> &[Arc<ConcreteExpr>] {
        match self {
            TraceChildren::Zero => &[],
            TraceChildren::One(children) => children,
            TraceChildren::Two(children) => children,
            TraceChildren::Three(children) => children,
        }
    }
}

impl FromIterator<Arc<ConcreteExpr>> for TraceChildren {
    fn from_iter<I: IntoIterator<Item = Arc<ConcreteExpr>>>(iter: I) -> TraceChildren {
        let mut iter = iter.into_iter();
        match (iter.next(), iter.next(), iter.next()) {
            (None, _, _) => TraceChildren::Zero,
            (Some(a), None, _) => TraceChildren::One([a]),
            (Some(a), Some(b), None) => TraceChildren::Two([a, b]),
            (Some(a), Some(b), Some(c)) => {
                assert!(iter.next().is_none(), "operation arity exceeds MAX_ARITY");
                TraceChildren::Three([a, b, c])
            }
        }
    }
}

impl From<Vec<Arc<ConcreteExpr>>> for TraceChildren {
    fn from(children: Vec<Arc<ConcreteExpr>>) -> TraceChildren {
        children.into_iter().collect()
    }
}

impl<'a> IntoIterator for &'a TraceChildren {
    type Item = &'a Arc<ConcreteExpr>;
    type IntoIter = std::slice::Iter<'a, Arc<ConcreteExpr>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// The four constant leaves worth caching process-wide: loop counters,
/// comparisons and polynomial evaluation make `0.0`, `1.0`, `-1.0` and `2.0`
/// by far the most common constants in traced programs.
fn cached_constant(bits: u64) -> Option<&'static Arc<ConcreteExpr>> {
    static CACHE: OnceLock<[(u64, Arc<ConcreteExpr>); 4]> = OnceLock::new();
    let cache = CACHE.get_or_init(|| {
        [0.0f64, 1.0, -1.0, 2.0]
            .map(|value| (value.to_bits(), Arc::new(ConcreteExpr::Leaf { value })))
    });
    cache.iter().find(|(b, _)| *b == bits).map(|(_, leaf)| leaf)
}

impl ConcreteExpr {
    /// Creates a leaf node. The common constants (`0.0`, `1.0`, `-1.0`,
    /// `2.0`) are served from a process-wide cache and never allocate.
    pub fn leaf(value: f64) -> Arc<ConcreteExpr> {
        if let Some(cached) = cached_constant(value.to_bits()) {
            return Arc::clone(cached);
        }
        Arc::new(ConcreteExpr::Leaf { value })
    }

    /// Creates an operation node. The location is accepted as either an
    /// owned [`SourceLoc`] (wrapped once) or an already-shared
    /// `Arc<SourceLoc>` (the allocation-free hot path).
    pub fn node(
        op: RealOp,
        value: f64,
        children: impl Into<TraceChildren>,
        pc: usize,
        loc: impl Into<Arc<SourceLoc>>,
    ) -> Arc<ConcreteExpr> {
        Arc::new(ConcreteExpr::node_value(
            op,
            value,
            children.into(),
            pc,
            loc.into(),
        ))
    }

    /// Builds the node value itself (depth included) without boxing it into
    /// an `Arc`, so [`ExprInterner`] can place it into a recycled allocation.
    fn node_value(
        op: RealOp,
        value: f64,
        children: TraceChildren,
        pc: usize,
        loc: Arc<SourceLoc>,
    ) -> ConcreteExpr {
        let depth = 1 + children.iter().map(|c| c.depth()).max().unwrap_or(0);
        ConcreteExpr::Node {
            op,
            value,
            children,
            pc,
            loc,
            depth,
        }
    }

    /// The double value at this node.
    pub fn value(&self) -> f64 {
        match self {
            ConcreteExpr::Leaf { value } | ConcreteExpr::Node { value, .. } => *value,
        }
    }

    /// True if this is a leaf (input/constant) node.
    pub fn is_leaf(&self) -> bool {
        matches!(self, ConcreteExpr::Leaf { .. })
    }

    /// The depth of the trace in operation nodes (a leaf has depth 0).
    pub fn depth(&self) -> usize {
        match self {
            ConcreteExpr::Leaf { .. } => 0,
            ConcreteExpr::Node { depth, .. } => *depth,
        }
    }

    /// The number of operation nodes in the trace.
    pub fn operation_count(&self) -> usize {
        match self {
            ConcreteExpr::Leaf { .. } => 0,
            ConcreteExpr::Node { children, .. } => {
                1 + children.iter().map(|c| c.operation_count()).sum::<usize>()
            }
        }
    }

    /// Returns a copy of the trace truncated to at most `max_depth` levels of
    /// operations; subtrees below the cut become leaves holding their value.
    ///
    /// This implements the maximum-expression-depth knob of Figures 5c/5d: a
    /// depth of 1 keeps only the top operation.
    pub fn truncate_to_depth(self: &Arc<ConcreteExpr>, max_depth: usize) -> Arc<ConcreteExpr> {
        if max_depth == 0 {
            return ConcreteExpr::leaf(self.value());
        }
        match self.as_ref() {
            ConcreteExpr::Leaf { .. } => Arc::clone(self),
            ConcreteExpr::Node {
                op,
                value,
                children,
                pc,
                loc,
                depth,
            } => {
                if *depth <= max_depth {
                    return Arc::clone(self);
                }
                let truncated: TraceChildren = children
                    .iter()
                    .map(|c| c.truncate_to_depth(max_depth - 1))
                    .collect();
                ConcreteExpr::node(*op, *value, truncated, *pc, Arc::clone(loc))
            }
        }
    }

    /// Structural equality bounded to `depth` levels (used by the
    /// approximate anti-unification of §6.1). Values are compared by bit
    /// pattern so that NaNs compare equal to themselves.
    ///
    /// Pointer-identical nodes — the common case once traces are
    /// hash-consed — short-circuit to `true` without walking the subtree.
    pub fn equivalent_to_depth(&self, other: &ConcreteExpr, depth: usize) -> bool {
        if std::ptr::eq(self, other) {
            return true;
        }
        if depth == 0 {
            return true;
        }
        match (self, other) {
            (ConcreteExpr::Leaf { value: a }, ConcreteExpr::Leaf { value: b }) => {
                a.to_bits() == b.to_bits()
            }
            (
                ConcreteExpr::Node {
                    op: op_a,
                    children: ch_a,
                    ..
                },
                ConcreteExpr::Node {
                    op: op_b,
                    children: ch_b,
                    ..
                },
            ) => {
                op_a == op_b
                    && ch_a.len() == ch_b.len()
                    && ch_a
                        .iter()
                        .zip(ch_b)
                        .all(|(a, b)| a.equivalent_to_depth(b, depth - 1))
            }
            _ => false,
        }
    }

    /// The source locations of every operation node, outermost first (the
    /// paper notes Herbgrind can provide source locations for each node of
    /// the extracted expression).
    pub fn locations(&self) -> Vec<SourceLoc> {
        let mut out = Vec::new();
        self.collect_locations(&mut out);
        out
    }

    fn collect_locations(&self, out: &mut Vec<SourceLoc>) {
        if let ConcreteExpr::Node { loc, children, .. } = self {
            out.push((**loc).clone());
            for c in children {
                c.collect_locations(out);
            }
        }
    }
}

/// Identity of an interned node: the operation, the observed value, the
/// statement, and the identities of the children. Children are keyed by
/// pointer — sound because the interner keeps every interned node (and
/// therefore every child an entry references) alive, so a keyed address can
/// never be reused while the table exists. Arity is bounded by
/// [`MAX_ARITY`] ([`RealOp`] has no wider operation), so the key is a
/// fixed-size, allocation-free value.
///
/// The key carries its own precomputed hash, split into a *structural* part
/// (operation, statement, children) finished with the value bits. The
/// group-level entry point ([`ExprInterner::node_group`]) hashes the
/// structural part once per convergent lane group and finishes it per lane,
/// so a `W`-lane group pays one structural hash instead of `W`; the `Hash`
/// impl then only has to feed the cached word to the table's hasher.
#[derive(Debug)]
struct NodeKey {
    hash: u64,
    op: RealOp,
    value_bits: u64,
    pc: usize,
    arity: u8,
    children: [usize; MAX_ARITY],
}

/// One multiply-rotate mixing step (an FxHash-style combiner): cheap,
/// deterministic, and good enough for a table whose keys are pointer sets.
#[inline]
fn mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// The structural half of a node key's hash: everything except the observed
/// value, which lane-variant probes mix in last via [`finish_hash`].
#[inline]
fn structural_hash(op: RealOp, pc: usize, children: &[usize; MAX_ARITY], arity: u8) -> u64 {
    let mut hash = mix(0, op as u64);
    hash = mix(hash, pc as u64);
    hash = mix(hash, u64::from(arity));
    for &child in children {
        hash = mix(hash, child as u64);
    }
    hash
}

/// Finishes a structural hash with a lane's observed value.
#[inline]
fn finish_hash(structural: u64, value_bits: u64) -> u64 {
    mix(structural, value_bits)
}

/// Copies child identities into the fixed-size key slot.
#[inline]
fn child_ptrs<'a>(
    children: impl Iterator<Item = &'a Arc<ConcreteExpr>>,
) -> ([usize; MAX_ARITY], u8) {
    let mut ptrs = [0usize; MAX_ARITY];
    let mut arity = 0u8;
    for child in children {
        assert!(
            (arity as usize) < MAX_ARITY,
            "RealOp arity exceeds key capacity"
        );
        ptrs[arity as usize] = Arc::as_ptr(child) as usize;
        arity += 1;
    }
    (ptrs, arity)
}

impl NodeKey {
    fn with_structural(
        op: RealOp,
        value: f64,
        pc: usize,
        children: [usize; MAX_ARITY],
        arity: u8,
        structural: u64,
    ) -> NodeKey {
        NodeKey {
            hash: finish_hash(structural, value.to_bits()),
            op,
            value_bits: value.to_bits(),
            pc,
            arity,
            children,
        }
    }

    fn new(op: RealOp, value: f64, pc: usize, children: &[Arc<ConcreteExpr>]) -> NodeKey {
        let (ptrs, arity) = child_ptrs(children.iter());
        let structural = structural_hash(op, pc, &ptrs, arity);
        NodeKey::with_structural(op, value, pc, ptrs, arity, structural)
    }

    fn from_refs(op: RealOp, value: f64, pc: usize, children: &[&Arc<ConcreteExpr>]) -> NodeKey {
        let (ptrs, arity) = child_ptrs(children.iter().copied());
        let structural = structural_hash(op, pc, &ptrs, arity);
        NodeKey::with_structural(op, value, pc, ptrs, arity, structural)
    }
}

impl PartialEq for NodeKey {
    fn eq(&self, other: &Self) -> bool {
        // The cached hash is a function of the other fields, so it carries no
        // extra information; comparing it first just rejects non-matches
        // cheaply.
        self.hash == other.hash
            && self.op == other.op
            && self.value_bits == other.value_bits
            && self.pc == other.pc
            && self.arity == other.arity
            && self.children == other.children
    }
}

impl Eq for NodeKey {}

impl Hash for NodeKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// One lane's request in a group interning call
/// ([`ExprInterner::node_group`]): the value the lane observed and its
/// operand traces.
pub struct LaneNode<'a> {
    /// The double value the lane computed at the statement.
    pub value: f64,
    /// The lane's operand traces, in operand order.
    pub children: &'a [&'a Arc<ConcreteExpr>],
}

/// A hash-consing table for [`ConcreteExpr`] nodes.
///
/// Tracing allocates one node per executed operation, and loops or repeated
/// subcomputations produce many structurally identical subtraces. The
/// interner returns the existing `Arc` when a node it already built is
/// requested again, so repeated subtraces share one allocation and the
/// anti-unification in [`crate::symbolic`] hits its pointer-identity fast
/// path instead of walking subtrees.
///
/// Each serial analysis shard owns one interner (per-run state like shadow
/// memory, cleared at the start of every run); the batched analysis owns
/// one **group-level** interner shared by all its lane shards and driven
/// through [`ExprInterner::node_group`], so lanes with identical
/// observations share nodes. Interning affects only allocation sharing,
/// never analysis output, so shard-merged reports stay bit-identical to
/// serial ones regardless of which table a node came from; interners are
/// simply dropped when shards merge.
///
/// The table keeps every interned node alive until the run ends, so growth
/// is bounded two ways: callers skip interning for nodes that cannot be
/// shared (the analysis bypasses traces deeper than its tracking bound),
/// and the table itself stops inserting past [`MAX_INTERNED`] entries —
/// lookups still succeed, later misses just allocate unshared nodes.
#[derive(Debug, Default)]
pub struct ExprInterner {
    leaves: HashMap<u64, Arc<ConcreteExpr>, Prehashed>,
    nodes: HashMap<NodeKey, Arc<ConcreteExpr>, Prehashed>,
    /// Recycled node allocations: `Arc`s whose contents died with the
    /// previous run ([`ExprInterner::clear`]) and whose heap blocks can be
    /// rewritten in place for this run's nodes. Every entry is uniquely
    /// owned (checked with [`Arc::get_mut`] before pooling), so overwriting
    /// it is invisible to the rest of the analysis.
    pool: Vec<Arc<ConcreteExpr>>,
}

/// Hash builder for the interner tables: every key either is a single word
/// (leaf value bits) or carries a precomputed FxHash-mixed word
/// ([`NodeKey`]), so the default SipHash would only add latency to every
/// probe and insert on the tracing hot path. One extra [`mix`] round is kept
/// so raw leaf bits still spread across buckets.
#[derive(Clone, Debug, Default)]
struct Prehashed;

#[derive(Clone, Default)]
struct PrehashedHasher(u64);

impl Hasher for PrehashedHasher {
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("interner keys hash through write_u64");
    }
    fn write_u64(&mut self, word: u64) {
        self.0 = mix(self.0, word);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

impl BuildHasher for Prehashed {
    type Hasher = PrehashedHasher;
    fn build_hasher(&self) -> PrehashedHasher {
        PrehashedHasher(0)
    }
}

/// Per-table entry cap (leaves and nodes counted separately): a backstop so
/// a single pathological run — millions of distinct shallow subtraces —
/// cannot pin unbounded memory in exchange for a near-zero hit rate.
const MAX_INTERNED: usize = 1 << 20;

/// Cap on recycled node allocations kept across [`ExprInterner::clear`]:
/// enough to cover the per-run working set of a sweep input without pinning
/// a pathological run's worth of dead blocks.
const POOL_CAP: usize = 4096;

impl ExprInterner {
    /// Creates an empty interner.
    pub fn new() -> ExprInterner {
        ExprInterner::default()
    }

    /// An interned leaf node for `value`.
    pub fn leaf(&mut self, value: f64) -> Arc<ConcreteExpr> {
        let bits = value.to_bits();
        if let Some(cached) = cached_constant(bits) {
            return Arc::clone(cached);
        }
        if let Some(existing) = self.leaves.get(&bits) {
            return Arc::clone(existing);
        }
        let leaf = Arc::new(ConcreteExpr::Leaf { value });
        if self.leaves.len() < MAX_INTERNED {
            self.leaves.insert(bits, Arc::clone(&leaf));
        }
        leaf
    }

    /// An interned operation node; returns the existing node when the same
    /// `(op, value, pc, children)` combination was interned before.
    pub fn node(
        &mut self,
        op: RealOp,
        value: f64,
        children: Vec<Arc<ConcreteExpr>>,
        pc: usize,
        loc: impl Into<Arc<SourceLoc>>,
    ) -> Arc<ConcreteExpr> {
        let key = NodeKey::new(op, value, pc, &children);
        if let Some(existing) = self.nodes.get(&key) {
            telemetry::INTERNER_PROBE_HITS.incr();
            return Arc::clone(existing);
        }
        telemetry::INTERNER_PROBE_MISSES.incr();
        let node = self.alloc_node(ConcreteExpr::node_value(
            op,
            value,
            children.into(),
            pc,
            loc.into(),
        ));
        if self.nodes.len() < MAX_INTERNED {
            self.nodes.insert(key, Arc::clone(&node));
        }
        node
    }

    /// Like [`ExprInterner::node`], with the children and location passed by
    /// reference: on a table hit (the common case inside loops) nothing is
    /// cloned or allocated — the child `Arc`s are only cloned into a fresh
    /// `Vec` when the node is genuinely new. This is the entry point the
    /// analysis hot loop uses.
    pub fn node_ref(
        &mut self,
        op: RealOp,
        value: f64,
        children: &[&Arc<ConcreteExpr>],
        pc: usize,
        loc: &Arc<SourceLoc>,
    ) -> Arc<ConcreteExpr> {
        let key = NodeKey::from_refs(op, value, pc, children);
        if let Some(existing) = self.nodes.get(&key) {
            telemetry::INTERNER_PROBE_HITS.incr();
            return Arc::clone(existing);
        }
        telemetry::INTERNER_PROBE_MISSES.incr();
        let node = self.alloc_node(ConcreteExpr::node_value(
            op,
            value,
            TraceChildren::from_refs(children),
            pc,
            Arc::clone(loc),
        ));
        if self.nodes.len() < MAX_INTERNED {
            self.nodes.insert(key, Arc::clone(&node));
        }
        node
    }

    /// The group-level interning entry point used by the batched analysis:
    /// interns the result nodes of one statement executed by a convergent
    /// lane group, producing one `Arc` per *distinct* observation instead of
    /// one table walk per lane.
    ///
    /// `lanes[l]` is `Some` for every lane that needs a node (inactive and
    /// cold-path lanes pass `None`); `out` is filled parallel to `lanes`.
    /// The table is probed with hashes that are computed once per distinct
    /// structure: lanes whose operand traces are pointer-identical share one
    /// structural hash (the common convergent case, since their operands
    /// were themselves built as shared group nodes) and split per lane only
    /// when their observed values differ. Lanes with bit-identical values
    /// *and* identical operands receive the same `Arc` — the group-shared
    /// trace node. Sharing is invisible to the analysis output (nodes are
    /// compared structurally everywhere), so reports stay bit-identical to
    /// the serial interner; it only multiplies the pointer-identity fast
    /// paths downstream.
    pub fn node_group(
        &mut self,
        op: RealOp,
        pc: usize,
        loc: &Arc<SourceLoc>,
        lanes: &[Option<LaneNode<'_>>],
        out: &mut Vec<Option<Arc<ConcreteExpr>>>,
    ) {
        out.clear();
        out.resize(lanes.len(), None);
        // Distinct operand-pointer sets seen so far, with their structural
        // hashes: a stack buffer scanned linearly (lane groups rarely hold
        // more than a few distinct structures; overflow just recomputes).
        let mut structures = [([0usize; MAX_ARITY], 0u8, 0u64); 8];
        let mut structure_count = 0usize;
        for (l, req) in lanes.iter().enumerate() {
            let Some(req) = req else { continue };
            let (ptrs, arity) = child_ptrs(req.children.iter().copied());
            let value_bits = req.value.to_bits();
            // Share within the group: an earlier lane with the same operands
            // and the same value already produced this exact node.
            if let Some(shared) = lanes[..l].iter().zip(out.iter()).find_map(|(prev, node)| {
                let prev = prev.as_ref()?;
                let node = node.as_ref()?;
                (prev.value.to_bits() == value_bits
                    && prev.children.len() == req.children.len()
                    && prev
                        .children
                        .iter()
                        .zip(req.children)
                        .all(|(a, b)| Arc::ptr_eq(a, b)))
                .then(|| Arc::clone(node))
            }) {
                telemetry::BATCH_GROUP_SHARED_NODES.incr();
                out[l] = Some(shared);
                continue;
            }
            telemetry::BATCH_GROUP_SPLIT_NODES.incr();
            let structural = match structures[..structure_count]
                .iter()
                .find(|(p, a, _)| *a == arity && *p == ptrs)
            {
                Some((_, _, hash)) => *hash,
                None => {
                    let hash = structural_hash(op, pc, &ptrs, arity);
                    if structure_count < structures.len() {
                        structures[structure_count] = (ptrs, arity, hash);
                        structure_count += 1;
                    }
                    hash
                }
            };
            let key = NodeKey::with_structural(op, req.value, pc, ptrs, arity, structural);
            if let Some(existing) = self.nodes.get(&key) {
                telemetry::INTERNER_PROBE_HITS.incr();
                out[l] = Some(Arc::clone(existing));
                continue;
            }
            telemetry::INTERNER_PROBE_MISSES.incr();
            let node = self.alloc_node(ConcreteExpr::node_value(
                op,
                req.value,
                TraceChildren::from_refs(req.children),
                pc,
                Arc::clone(loc),
            ));
            if self.nodes.len() < MAX_INTERNED {
                self.nodes.insert(key, Arc::clone(&node));
            }
            out[l] = Some(node);
        }
    }

    /// Boxes a freshly built node, reusing a recycled allocation from the
    /// previous run when one is available — the steady-state sweep path
    /// allocates trace nodes only while a run's working set outgrows every
    /// prior run's.
    fn alloc_node(&mut self, node: ConcreteExpr) -> Arc<ConcreteExpr> {
        while let Some(mut recycled) = self.pool.pop() {
            if let Some(slot) = Arc::get_mut(&mut recycled) {
                *slot = node;
                telemetry::INTERNER_POOL_RECYCLES.incr();
                return recycled;
            }
        }
        Arc::new(node)
    }

    /// Drops all interned nodes (per-run state, like shadow memory).
    ///
    /// Node allocations whose only owner is the table are not returned to
    /// the system: their contents are replaced with an inert leaf — which
    /// releases child subtrees and locations immediately, exactly like
    /// dropping — and the empty blocks are kept (up to [`POOL_CAP`]) for
    /// [`ExprInterner::alloc_node`] to rewrite during the next run.
    pub fn clear(&mut self) {
        telemetry::INTERNER_PEAK_NODES.record((self.leaves.len() + self.nodes.len()) as u64);
        let ExprInterner {
            leaves,
            nodes,
            pool,
        } = self;
        leaves.clear();
        for (_, mut node) in nodes.drain() {
            if pool.len() >= POOL_CAP {
                continue;
            }
            if let Some(slot) = Arc::get_mut(&mut node) {
                *slot = ConcreteExpr::Leaf { value: 0.0 };
                pool.push(node);
            }
        }
    }

    /// The number of distinct interned nodes (leaves plus operations).
    pub fn len(&self) -> usize {
        self.leaves.len() + self.nodes.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty() && self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Arc<ConcreteExpr> {
        // (sqrt(x*x + y*y)) - x  with x=3, y=4
        let x = ConcreteExpr::leaf(3.0);
        let y = ConcreteExpr::leaf(4.0);
        let xx = ConcreteExpr::node(
            RealOp::Mul,
            9.0,
            vec![x.clone(), x.clone()],
            0,
            SourceLoc::default(),
        );
        let yy = ConcreteExpr::node(
            RealOp::Mul,
            16.0,
            vec![y.clone(), y],
            1,
            SourceLoc::default(),
        );
        let sum = ConcreteExpr::node(RealOp::Add, 25.0, vec![xx, yy], 2, SourceLoc::default());
        let root = ConcreteExpr::node(RealOp::Sqrt, 5.0, vec![sum], 3, SourceLoc::default());
        ConcreteExpr::node(RealOp::Sub, 2.0, vec![root, x], 4, SourceLoc::default())
    }

    #[test]
    fn depth_and_operation_count() {
        let t = sample_trace();
        assert_eq!(t.depth(), 4);
        assert_eq!(t.operation_count(), 5);
        assert_eq!(t.value(), 2.0);
    }

    #[test]
    fn truncation_limits_depth() {
        let t = sample_trace();
        let shallow = t.truncate_to_depth(1);
        assert_eq!(shallow.depth(), 1);
        assert_eq!(shallow.value(), 2.0);
        // Children of the truncated node are leaves carrying the observed values.
        if let ConcreteExpr::Node { children, .. } = shallow.as_ref() {
            assert!(children.iter().all(|c| c.is_leaf()));
            assert_eq!(children[0].value(), 5.0);
            assert_eq!(children[1].value(), 3.0);
        } else {
            panic!("expected a node");
        }
        // Truncating deeper than the trace is the identity (same allocation).
        let same = t.truncate_to_depth(10);
        assert!(Arc::ptr_eq(&t, &same));
    }

    #[test]
    fn bounded_equivalence() {
        let a = sample_trace();
        let b = sample_trace();
        assert!(a.equivalent_to_depth(&b, 10));
        // A trace with a different leaf value differs at depth 5 but is
        // indistinguishable at depth 1 (same top operation).
        let x = ConcreteExpr::leaf(3.0);
        let different = ConcreteExpr::node(
            RealOp::Sub,
            2.0,
            vec![ConcreteExpr::leaf(5.0), x],
            4,
            SourceLoc::default(),
        );
        assert!(a.equivalent_to_depth(&different, 1));
        assert!(!a.equivalent_to_depth(&different, 2));
    }

    #[test]
    fn nan_leaves_compare_equal_to_themselves() {
        let a = ConcreteExpr::leaf(f64::NAN);
        let b = ConcreteExpr::leaf(f64::NAN);
        assert!(a.equivalent_to_depth(&b, 3));
    }

    #[test]
    fn sharing_is_by_reference() {
        let x = ConcreteExpr::leaf(1.5);
        let node = ConcreteExpr::node(
            RealOp::Add,
            3.0,
            vec![x.clone(), x.clone()],
            0,
            SourceLoc::default(),
        );
        if let ConcreteExpr::Node { children, .. } = node.as_ref() {
            assert!(Arc::ptr_eq(&children[0], &children[1]));
        }
    }

    #[test]
    fn locations_are_collected_outermost_first() {
        let t = sample_trace();
        let locs = t.locations();
        assert_eq!(locs.len(), 5);
    }

    #[test]
    fn common_constant_leaves_are_shared_process_wide() {
        for value in [0.0f64, 1.0, -1.0, 2.0] {
            let a = ConcreteExpr::leaf(value);
            let b = ConcreteExpr::leaf(value);
            assert!(Arc::ptr_eq(&a, &b), "constant {value} not cached");
            assert_eq!(a.value().to_bits(), value.to_bits());
        }
        // Negative zero has different bits and is not the cached 0.0.
        let nz = ConcreteExpr::leaf(-0.0);
        assert_eq!(nz.value().to_bits(), (-0.0f64).to_bits());
        // Uncached constants still get fresh allocations.
        let a = ConcreteExpr::leaf(3.25);
        let b = ConcreteExpr::leaf(3.25);
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn interner_shares_repeated_subtraces() {
        let mut interner = ExprInterner::new();
        let x = interner.leaf(7.0);
        let a = interner.node(
            RealOp::Mul,
            49.0,
            vec![x.clone(), x.clone()],
            0,
            SourceLoc::default(),
        );
        let b = interner.node(
            RealOp::Mul,
            49.0,
            vec![x.clone(), x.clone()],
            0,
            SourceLoc::default(),
        );
        assert!(Arc::ptr_eq(&a, &b), "same identity must intern to one node");
        assert_eq!(interner.len(), 2); // one leaf, one node
                                       // A different value, pc, or child set is a different node.
        let c = interner.node(
            RealOp::Mul,
            50.0,
            vec![x.clone(), x.clone()],
            0,
            SourceLoc::default(),
        );
        assert!(!Arc::ptr_eq(&a, &c));
        let d = interner.node(
            RealOp::Mul,
            49.0,
            vec![x.clone(), x],
            1,
            SourceLoc::default(),
        );
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(interner.len(), 4);
    }

    #[test]
    fn clear_recycles_exclusively_owned_node_allocations() {
        let mut interner = ExprInterner::new();
        let x = interner.leaf(7.0);
        let first = interner.node(
            RealOp::Mul,
            49.0,
            vec![x.clone(), x.clone()],
            0,
            SourceLoc::default(),
        );
        let recycled_block = Arc::as_ptr(&first);
        // Keeping an outside owner across `clear` pins the allocation: the
        // interner must not hand it out to the next run.
        let pinned = interner.node(
            RealOp::Add,
            14.0,
            vec![x.clone(), x],
            1,
            SourceLoc::default(),
        );
        drop(first);
        interner.clear();
        assert!(interner.is_empty());
        let y = interner.leaf(9.0);
        let reused = interner.node(
            RealOp::Sub,
            2.0,
            vec![y.clone(), y.clone()],
            2,
            SourceLoc::default(),
        );
        // The sole-owner node's heap block was rewritten in place for the
        // new run's node; the pinned node's block was not.
        assert_eq!(Arc::as_ptr(&reused), recycled_block);
        assert_ne!(Arc::as_ptr(&reused), Arc::as_ptr(&pinned));
        assert_eq!(reused.value(), 2.0);
        assert_eq!(reused.depth(), 1);
        // The pinned node still reads back its original contents.
        assert_eq!(pinned.value(), 14.0);
        assert_eq!(pinned.operation_count(), 1);
    }

    #[test]
    fn node_ref_interns_to_the_same_entry_as_node() {
        let mut interner = ExprInterner::new();
        let x = interner.leaf(7.0);
        let owned = interner.node(
            RealOp::Mul,
            49.0,
            vec![x.clone(), x.clone()],
            0,
            SourceLoc::default(),
        );
        let by_ref = interner.node_ref(
            RealOp::Mul,
            49.0,
            &[&x, &x],
            0,
            &Arc::new(SourceLoc::default()),
        );
        assert!(Arc::ptr_eq(&owned, &by_ref));
        // A genuinely new identity through node_ref is interned for reuse.
        let fresh = interner.node_ref(
            RealOp::Add,
            14.0,
            &[&x, &x],
            1,
            &Arc::new(SourceLoc::default()),
        );
        let again = interner.node_ref(
            RealOp::Add,
            14.0,
            &[&x, &x],
            1,
            &Arc::new(SourceLoc::default()),
        );
        assert!(Arc::ptr_eq(&fresh, &again));
    }

    #[test]
    fn interner_leaves_are_shared_within_a_shard() {
        let mut interner = ExprInterner::new();
        let a = interner.leaf(0.1);
        let b = interner.leaf(0.1);
        assert!(Arc::ptr_eq(&a, &b));
        // The process-wide constants bypass the per-shard table.
        let one = interner.leaf(1.0);
        assert!(Arc::ptr_eq(&one, &ConcreteExpr::leaf(1.0)));
        assert_eq!(interner.len(), 1);
        interner.clear();
        assert!(interner.is_empty());
    }

    #[test]
    fn node_group_shares_lanes_with_identical_observations() {
        let mut interner = ExprInterner::new();
        let x = interner.leaf(7.0);
        let y = interner.leaf(9.0);
        let mut out = Vec::new();
        // Lanes 0 and 2 observe the same (value, children); lane 1 differs in
        // value, lane 3 differs in children, lane 4 is inactive.
        let lanes = [
            Some(LaneNode {
                value: 49.0,
                children: &[&x, &x],
            }),
            Some(LaneNode {
                value: 50.0,
                children: &[&x, &x],
            }),
            Some(LaneNode {
                value: 49.0,
                children: &[&x, &x],
            }),
            Some(LaneNode {
                value: 49.0,
                children: &[&x, &y],
            }),
            None,
        ];
        interner.node_group(
            RealOp::Mul,
            3,
            &Arc::new(SourceLoc::default()),
            &lanes,
            &mut out,
        );
        let node = |l: usize| out[l].as_ref().unwrap();
        assert!(Arc::ptr_eq(node(0), node(2)), "identical lanes share");
        assert!(!Arc::ptr_eq(node(0), node(1)), "values split lanes");
        assert!(!Arc::ptr_eq(node(0), node(3)), "children split lanes");
        assert!(out[4].is_none(), "inactive lanes get no node");
        assert_eq!(node(1).value(), 50.0);
        // The group nodes are interned under the same identity the serial
        // entry points use.
        let serial = interner.node_ref(
            RealOp::Mul,
            49.0,
            &[&x, &x],
            3,
            &Arc::new(SourceLoc::default()),
        );
        assert!(Arc::ptr_eq(node(0), &serial));
        let serial = interner.node_ref(
            RealOp::Mul,
            49.0,
            &[&x, &y],
            3,
            &Arc::new(SourceLoc::default()),
        );
        assert!(Arc::ptr_eq(node(3), &serial));
    }

    #[test]
    fn node_group_reuses_nodes_across_calls() {
        let mut interner = ExprInterner::new();
        let x = interner.leaf(2.5);
        let mut out = Vec::new();
        let lanes = [Some(LaneNode {
            value: 5.0,
            children: &[&x],
        })];
        interner.node_group(
            RealOp::Sqrt,
            1,
            &Arc::new(SourceLoc::default()),
            &lanes,
            &mut out,
        );
        let first = Arc::clone(out[0].as_ref().unwrap());
        interner.node_group(
            RealOp::Sqrt,
            1,
            &Arc::new(SourceLoc::default()),
            &lanes,
            &mut out,
        );
        assert!(Arc::ptr_eq(&first, out[0].as_ref().unwrap()));
        assert_eq!(interner.len(), 2); // one leaf, one node
    }

    #[test]
    fn interned_nodes_hit_the_pointer_equality_fast_path() {
        let mut interner = ExprInterner::new();
        let x = interner.leaf(3.0);
        let deep = |interner: &mut ExprInterner| {
            let mut node = interner.leaf(3.0);
            for pc in 0..64 {
                node = interner.node(RealOp::Sqrt, 3.0, vec![node], pc, SourceLoc::default());
            }
            node
        };
        let a = deep(&mut interner);
        let b = deep(&mut interner);
        assert!(Arc::ptr_eq(&a, &b));
        // Equivalence on shared traces is O(1), not a 64-level walk; this
        // would still pass without the fast path, but exercises it.
        assert!(a.equivalent_to_depth(&b, usize::MAX >> 1));
        drop(x);
    }
}

//! Per-statement analysis records: operation entries and spot entries
//! (Figure 3 of the paper: `ops[pc]` and `spots[pc]`).

use crate::config::AnalysisConfig;
use crate::errsum::ErrorBitsSum;
use crate::inputs::InputCharacteristics;
use crate::symbolic::{Generalizer, VarAssignment};
use crate::trace::ConcreteExpr;
use fpvm::SourceLoc;
use shadowreal::RealOp;
use std::sync::Arc;

/// One lane's observation of a statement executed by a convergent lane
/// group, as consumed by [`OpRecord::record_bounded_group`].
pub struct GroupObservation<'a> {
    /// The (possibly group-shared) concrete trace of the lane's result.
    pub node: &'a Arc<ConcreteExpr>,
    /// The lane's local error for this execution, in bits.
    pub local_error: f64,
    /// Whether that local error exceeded the analysis threshold.
    pub erroneous: bool,
}

/// How many influences an [`InfluenceSet`] holds inline before spilling to
/// the heap. Most shadow values are influenced by zero or a handful of
/// candidate root causes, so the per-op union/propagation traffic stays
/// allocation-free and branch-cheap.
const INLINE_INFLUENCES: usize = 8;

/// The set of candidate-root-cause statements (program counters) that
/// influence a value — the "taint" of the influences analysis (§4.2).
///
/// Stored as a sorted, deduplicated sequence with small-vector storage: up
/// to [`INLINE_INFLUENCES`] entries live inline (no allocation — the common
/// case on the per-op propagation path), larger sets spill to a heap
/// vector. Iteration order is ascending, exactly the order the previous
/// `BTreeSet` representation produced, so record merges and reports are
/// bit-identical to it.
///
/// The spill vector sits behind an `Arc` with copy-on-write mutation, so
/// cloning a spilled set — the `on_copy` path shares whole shadows per
/// client copy instruction — is a reference-count bump, not a heap copy.
/// Mutations detach ([`Arc::make_mut`]) only when the storage is actually
/// shared.
#[derive(Clone)]
pub struct InfluenceSet {
    /// Number of inline entries; meaningful only while `spill` is empty.
    len: usize,
    inline: [usize; INLINE_INFLUENCES],
    /// Heap storage; non-empty iff the set has spilled.
    spill: Arc<Vec<usize>>,
}

/// The shared empty spill vector: lets `InfluenceSet::new` and `clear`
/// stay allocation-free (a plain `Arc::new(Vec::new())` would allocate the
/// reference-count block even though the vector itself is empty).
fn empty_spill() -> Arc<Vec<usize>> {
    static EMPTY: std::sync::OnceLock<Arc<Vec<usize>>> = std::sync::OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new())))
}

impl InfluenceSet {
    /// Creates an empty set.
    pub fn new() -> InfluenceSet {
        InfluenceSet {
            len: 0,
            inline: [0; INLINE_INFLUENCES],
            spill: empty_spill(),
        }
    }

    /// The influences as a sorted, deduplicated slice.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// Number of influences in the set.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// True if `value` is in the set.
    pub fn contains(&self, value: &usize) -> bool {
        self.as_slice().binary_search(value).is_ok()
    }

    /// Iterates the influences in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, usize> {
        self.as_slice().iter()
    }

    /// Inserts `value`, keeping the storage sorted and deduplicated.
    /// Returns true if the value was not present.
    pub fn insert(&mut self, value: usize) -> bool {
        if self.spill.is_empty() {
            match self.inline[..self.len].binary_search(&value) {
                Ok(_) => false,
                Err(pos) => {
                    if self.len < INLINE_INFLUENCES {
                        self.inline.copy_within(pos..self.len, pos + 1);
                        self.inline[pos] = value;
                        self.len += 1;
                    } else {
                        // Spill: move the inline entries to the heap (an
                        // exclusively-owned buffer's capacity survives
                        // `clear`, so a reused set spills without
                        // reallocating).
                        let spill = Arc::make_mut(&mut self.spill);
                        spill.extend_from_slice(&self.inline);
                        spill.insert(pos, value);
                        self.len = 0;
                    }
                    true
                }
            }
        } else {
            match self.spill.binary_search(&value) {
                Ok(_) => false,
                Err(pos) => {
                    Arc::make_mut(&mut self.spill).insert(pos, value);
                    true
                }
            }
        }
    }

    /// Empties the set, keeping exclusively-owned heap capacity for reuse;
    /// shared spill storage is released to its other owners instead.
    pub fn clear(&mut self) {
        self.len = 0;
        if !self.spill.is_empty() {
            match Arc::get_mut(&mut self.spill) {
                Some(vec) => vec.clear(),
                None => self.spill = empty_spill(),
            }
        }
    }

    /// Unions another set into this one with a single linear merge of the
    /// two sorted sequences — the hot influence-propagation path unions
    /// whole sets per operand, where per-element insertion would shift the
    /// storage once per element.
    pub fn union_with(&mut self, other: &InfluenceSet) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.clone_from(other);
            return;
        }
        let b = other.as_slice();
        // Fast path: `other` extends strictly beyond our maximum (common
        // when influences accumulate from monotonically increasing pcs).
        let a_last = *self.as_slice().last().expect("non-empty");
        if b[0] > a_last {
            if self.spill.is_empty() && self.len + b.len() <= INLINE_INFLUENCES {
                self.inline[self.len..self.len + b.len()].copy_from_slice(b);
                self.len += b.len();
            } else {
                let spill = Arc::make_mut(&mut self.spill);
                if spill.is_empty() {
                    spill.extend_from_slice(&self.inline[..self.len]);
                    self.len = 0;
                }
                spill.extend_from_slice(b);
            }
            return;
        }
        let a_inline = self.inline;
        let a_vec = std::mem::replace(&mut self.spill, empty_spill());
        let a = if a_vec.is_empty() {
            &a_inline[..self.len]
        } else {
            &a_vec[..]
        };
        if a.len() + b.len() <= INLINE_INFLUENCES {
            let mut out = [0usize; INLINE_INFLUENCES];
            self.len = merge_sorted_dedup(a, b, |n, v| out[n] = v);
            self.inline = out;
        } else {
            let mut out = Vec::with_capacity(a.len() + b.len());
            merge_sorted_dedup(a, b, |_, v| out.push(v));
            self.len = 0;
            self.spill = Arc::new(out);
        }
    }
}

/// Merges two sorted, deduplicated slices, emitting each element once in
/// ascending order through `emit(index, value)`; returns the merged length.
fn merge_sorted_dedup(a: &[usize], b: &[usize], mut emit: impl FnMut(usize, usize)) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        let value = match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                let v = a[i];
                i += 1;
                v
            }
            std::cmp::Ordering::Greater => {
                let v = b[j];
                j += 1;
                v
            }
            std::cmp::Ordering::Equal => {
                let v = a[i];
                i += 1;
                j += 1;
                v
            }
        };
        emit(n, value);
        n += 1;
    }
    for &v in &a[i..] {
        emit(n, v);
        n += 1;
    }
    for &v in &b[j..] {
        emit(n, v);
        n += 1;
    }
    n
}

impl Default for InfluenceSet {
    fn default() -> Self {
        InfluenceSet::new()
    }
}

impl PartialEq for InfluenceSet {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for InfluenceSet {}

impl std::fmt::Debug for InfluenceSet {
    /// Renders like the set it is (`{3, 7}`), matching the previous
    /// `BTreeSet` representation's output.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl Extend<usize> for InfluenceSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for value in iter {
            self.insert(value);
        }
    }
}

impl<const N: usize> From<[usize; N]> for InfluenceSet {
    fn from(values: [usize; N]) -> Self {
        let mut set = InfluenceSet::new();
        set.extend(values);
        set
    }
}

impl<'a> IntoIterator for &'a InfluenceSet {
    type Item = &'a usize;
    type IntoIter = std::slice::Iter<'a, usize>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// The kind of a spot (§4.2): a place where floating-point error becomes
/// observable program behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpotKind {
    /// A program output.
    Output,
    /// A conditional branch whose predicate reads floating-point values.
    Branch,
    /// A conversion from a floating-point value to an integer.
    FloatToInt,
}

impl SpotKind {
    /// The label used in reports ("Output", "Compare", "Convert"), matching
    /// the paper's report format.
    pub fn label(self) -> &'static str {
        match self {
            SpotKind::Output => "Output",
            SpotKind::Branch => "Compare",
            SpotKind::FloatToInt => "Convert",
        }
    }
}

/// The accumulated record for one spot.
#[derive(Clone, Debug)]
pub struct SpotRecord {
    /// What kind of spot this is.
    pub kind: SpotKind,
    /// Source location of the statement.
    pub location: SourceLoc,
    /// Number of times the spot executed.
    pub total: u64,
    /// Number of executions on which the spot was erroneous: output error
    /// above the threshold, branch divergence, or integer divergence.
    pub erroneous: u64,
    /// Maximum error observed (bits, for outputs; divergences count as the
    /// maximum error for branches/conversions).
    pub max_error: f64,
    /// Sum of observed errors (for the average), accumulated exactly so that
    /// shard-merged records equal serially accumulated ones bit for bit.
    pub total_error: ErrorBitsSum,
    /// Candidate root causes whose influence reached this spot on an
    /// erroneous execution.
    pub influences: InfluenceSet,
}

impl SpotRecord {
    /// Creates an empty record.
    pub fn new(kind: SpotKind, location: SourceLoc) -> SpotRecord {
        SpotRecord {
            kind,
            location,
            total: 0,
            erroneous: 0,
            max_error: 0.0,
            total_error: ErrorBitsSum::new(),
            influences: InfluenceSet::new(),
        }
    }

    /// Records one execution of the spot.
    pub fn record(&mut self, error_bits: f64, erroneous: bool, influences: &InfluenceSet) {
        self.total += 1;
        self.total_error.add(error_bits);
        if error_bits > self.max_error {
            self.max_error = error_bits;
        }
        if erroneous {
            self.erroneous += 1;
            self.influences.union_with(influences);
        }
    }

    /// Merges the record of a later input shard into this one. The combined
    /// record is identical to what serial accumulation over the concatenated
    /// inputs produces: every field is a count, an exact sum, a maximum, or a
    /// set union.
    pub fn merge(&mut self, other: &SpotRecord) {
        debug_assert_eq!(self.kind, other.kind, "merging records of different spots");
        self.total += other.total;
        self.erroneous += other.erroneous;
        self.total_error.merge(&other.total_error);
        if other.max_error > self.max_error {
            self.max_error = other.max_error;
        }
        self.influences.union_with(&other.influences);
    }

    /// The average error over all executions, in bits.
    pub fn average_error(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.total_error.total_bits() / self.total as f64
        }
    }
}

/// The accumulated record for one floating-point operation statement.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// The operation.
    pub op: RealOp,
    /// Source location of the statement.
    pub location: SourceLoc,
    /// Number of times the operation executed.
    pub total: u64,
    /// Number of executions whose local error exceeded the threshold.
    pub erroneous: u64,
    /// Maximum local error observed, in bits.
    pub max_local_error: f64,
    /// Sum of local errors (for the average), accumulated exactly so that
    /// shard-merged records equal serially accumulated ones bit for bit.
    pub total_local_error: ErrorBitsSum,
    /// The incremental anti-unification state producing the symbolic
    /// expression for this operation.
    pub generalizer: Generalizer,
    /// Input characteristics for the symbolic expression's variables.
    pub characteristics: InputCharacteristics,
    /// An example concrete expression observed with high local error, kept
    /// for its leaf values ("Example problematic input" in reports).
    pub example_problematic: Option<Arc<ConcreteExpr>>,
}

impl OpRecord {
    /// Creates an empty record.
    pub fn new(op: RealOp, location: SourceLoc, config: &AnalysisConfig) -> OpRecord {
        OpRecord {
            op,
            location,
            total: 0,
            erroneous: 0,
            max_local_error: 0.0,
            total_local_error: ErrorBitsSum::new(),
            generalizer: Generalizer::new(config.antiunify_equivalence_depth),
            characteristics: InputCharacteristics::default(),
            example_problematic: None,
        }
    }

    /// Records one execution of the operation.
    pub fn record(
        &mut self,
        concrete: &Arc<ConcreteExpr>,
        local_error: f64,
        erroneous: bool,
        config: &AnalysisConfig,
    ) {
        self.record_bounded(concrete, usize::MAX, local_error, erroneous, config);
    }

    /// Records one execution of the operation with the concrete trace viewed
    /// through a depth budget: equivalent to
    /// `record(&concrete.truncate_to_depth(max_depth), ...)` without
    /// materializing the truncation on the hot path. The flat analysis keeps
    /// deeper-than-reported traces in shadow memory (truncating only when
    /// its storage bound overflows) and records through this entry point;
    /// the truncated trace is only built when a problematic example is
    /// actually kept.
    pub fn record_bounded(
        &mut self,
        concrete: &Arc<ConcreteExpr>,
        max_depth: usize,
        local_error: f64,
        erroneous: bool,
        config: &AnalysisConfig,
    ) {
        let mut truncation_cache = None;
        self.record_bounded_cached(
            concrete,
            max_depth,
            local_error,
            erroneous,
            config,
            &mut truncation_cache,
        );
    }

    /// Group variant of [`OpRecord::record_bounded`]: folds a convergent
    /// lane group's observations of one statement into the lanes' records
    /// **in lane order** — the order whose shard merge reproduces the serial
    /// sweep bit for bit. Each lane's record receives exactly the update
    /// `record_bounded` would apply; what the group call hoists is the work
    /// the group-shared trace layer makes shareable: lanes that keep the
    /// same shared node as their problematic example truncate it once, and
    /// the input-characteristics updates are driven through one
    /// [`InputCharacteristics::apply_assignments_group`] fold.
    pub fn record_bounded_group<'a>(
        observations: impl Iterator<Item = (&'a mut OpRecord, GroupObservation<'a>)>,
        max_depth: usize,
        config: &AnalysisConfig,
    ) {
        let mut truncation_cache: Option<(*const ConcreteExpr, Arc<ConcreteExpr>)> = None;
        InputCharacteristics::apply_assignments_group(
            observations.map(|(record, obs)| {
                record.observe_counts_and_example(
                    obs.node,
                    max_depth,
                    obs.local_error,
                    obs.erroneous,
                    &mut truncation_cache,
                )
            }),
            config.range_kind,
        );
    }

    /// [`OpRecord::record_bounded`] with a shared truncation cache (see
    /// [`OpRecord::record_bounded_group`]).
    fn record_bounded_cached(
        &mut self,
        concrete: &Arc<ConcreteExpr>,
        max_depth: usize,
        local_error: f64,
        erroneous: bool,
        config: &AnalysisConfig,
        truncation_cache: &mut Option<(*const ConcreteExpr, Arc<ConcreteExpr>)>,
    ) {
        let (characteristics, assignments, erroneous, had_prior_erroneous) = self
            .observe_counts_and_example(
                concrete,
                max_depth,
                local_error,
                erroneous,
                truncation_cache,
            );
        characteristics.apply_assignments(
            assignments,
            config.range_kind,
            erroneous,
            had_prior_erroneous,
        );
    }

    /// The counts/example/generalizer half of one observation, returning the
    /// characteristics update it implies (so group callers can fold those
    /// through [`InputCharacteristics::apply_assignments_group`]).
    fn observe_counts_and_example<'r>(
        &'r mut self,
        concrete: &Arc<ConcreteExpr>,
        max_depth: usize,
        local_error: f64,
        erroneous: bool,
        truncation_cache: &mut Option<(*const ConcreteExpr, Arc<ConcreteExpr>)>,
    ) -> (
        &'r mut InputCharacteristics,
        &'r [VarAssignment],
        bool,
        bool,
    ) {
        let had_prior_erroneous = self.erroneous > 0;
        self.total += 1;
        self.total_local_error.add(local_error);
        if local_error > self.max_local_error {
            self.max_local_error = local_error;
        }
        if erroneous {
            self.erroneous += 1;
            if self.example_problematic.is_none() {
                let key = Arc::as_ptr(concrete);
                let truncated = match truncation_cache {
                    Some((cached_key, cached)) if *cached_key == key => Arc::clone(cached),
                    _ => {
                        let truncated = concrete.truncate_to_depth(max_depth);
                        *truncation_cache = Some((key, Arc::clone(&truncated)));
                        truncated
                    }
                };
                self.example_problematic = Some(truncated);
            }
        }
        let OpRecord {
            generalizer,
            characteristics,
            ..
        } = self;
        let assignments = generalizer.observe_bounded_scratch(concrete, max_depth);
        (characteristics, assignments, erroneous, had_prior_erroneous)
    }

    /// Merges the record of a later input shard into this one: counts, exact
    /// sums, maxima, and the example are combined directly; the two symbolic
    /// expressions are anti-unified ([`Generalizer::merge`]) and the input
    /// characteristics rewired along the merged variables
    /// ([`InputCharacteristics::merged`]). The result matches what serial
    /// accumulation over the concatenated input sweep produces.
    pub fn merge(&mut self, other: &OpRecord, config: &AnalysisConfig) {
        debug_assert_eq!(self.op, other.op, "merging records of different operations");
        let left_had_erroneous = self.erroneous > 0;
        let right_had_erroneous = other.erroneous > 0;
        self.total += other.total;
        self.erroneous += other.erroneous;
        self.total_local_error.merge(&other.total_local_error);
        if other.max_local_error > self.max_local_error {
            self.max_local_error = other.max_local_error;
        }
        if self.example_problematic.is_none() {
            self.example_problematic = other.example_problematic.clone();
        }
        let assignments = self.generalizer.merge(&other.generalizer);
        self.characteristics = InputCharacteristics::merged(
            &self.characteristics,
            &other.characteristics,
            &assignments,
            config.range_kind,
            left_had_erroneous,
            right_had_erroneous,
        );
    }

    /// The average local error over all executions, in bits.
    pub fn average_local_error(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.total_local_error.total_bits() / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;

    #[test]
    fn influence_set_stays_sorted_through_spill_and_clear() {
        let mut set = InfluenceSet::new();
        // Descending inserts up to the inline capacity stay sorted.
        for pc in (0..INLINE_INFLUENCES).rev() {
            assert!(set.insert(pc * 2));
            assert!(!set.insert(pc * 2), "duplicate insert must be rejected");
        }
        assert_eq!(set.len(), INLINE_INFLUENCES);
        assert!(set.as_slice().windows(2).all(|w| w[0] < w[1]));
        // The spilling insert and further growth keep order and dedup.
        assert!(set.insert(1));
        assert!(set.insert(1000));
        assert!(!set.insert(1000));
        assert!(set.as_slice().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(set.len(), INLINE_INFLUENCES + 2);
        assert!(set.contains(&1) && set.contains(&1000) && !set.contains(&3));
        // Clearing returns to inline mode.
        set.clear();
        assert!(set.is_empty());
        set.insert(5);
        assert_eq!(set.as_slice(), &[5]);
        // Equality and Debug go through the logical contents.
        assert_eq!(set, InfluenceSet::from([5usize]));
        assert_eq!(format!("{set:?}"), "{5}");
    }

    #[test]
    fn cloned_spilled_sets_share_storage_until_mutated() {
        let mut set = InfluenceSet::new();
        for pc in 0..2 * INLINE_INFLUENCES {
            set.insert(pc);
        }
        assert!(!set.spill.is_empty(), "set should have spilled");
        // The clone is a reference-count bump on the same spill vector.
        let mut copy = set.clone();
        assert!(Arc::ptr_eq(&set.spill, &copy.spill));
        assert_eq!(set, copy);
        // Mutating the clone detaches it (copy-on-write) without touching
        // the original.
        copy.insert(1_000);
        assert!(!Arc::ptr_eq(&set.spill, &copy.spill));
        assert!(copy.contains(&1_000) && !set.contains(&1_000));
        assert_eq!(set.len(), 2 * INLINE_INFLUENCES);
        // Clearing a still-shared set releases the storage to the other
        // owner rather than wiping it.
        let third = set.clone();
        set.clear();
        assert!(set.is_empty());
        assert_eq!(third.len(), 2 * INLINE_INFLUENCES);
    }

    #[test]
    fn union_with_matches_per_element_insertion() {
        // Exercise every storage combination: inline/inline fitting inline,
        // inline/inline spilling, spilled/inline, overlapping, disjoint,
        // append-beyond-max fast path, and empty operands.
        let cases: &[(&[usize], &[usize])] = &[
            (&[], &[1, 5]),
            (&[1, 5], &[]),
            (&[1, 3, 5], &[2, 3, 8]),
            (&[1, 2, 3], &[7, 8, 9]),
            (&[1, 2, 3, 4, 5, 6], &[4, 5, 6, 7, 8, 9, 10]),
            (&[10, 20, 30, 40, 50, 60, 70, 80], &[5, 35, 85, 90, 95]),
            (&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10], &[2, 4, 6, 8, 10, 12]),
        ];
        for &(a, b) in cases {
            let mut merged = InfluenceSet::new();
            merged.extend(a.iter().copied());
            let mut by_insert = merged.clone();
            let mut other = InfluenceSet::new();
            other.extend(b.iter().copied());
            merged.union_with(&other);
            by_insert.extend(b.iter().copied());
            assert_eq!(merged, by_insert, "{a:?} ∪ {b:?}");
            assert!(merged.as_slice().windows(2).all(|w| w[0] < w[1]));
            // The union must stay usable afterwards (invariants intact).
            merged.insert(0);
            assert_eq!(merged.as_slice()[0], 0);
        }
    }

    #[test]
    fn spot_record_accumulates_errors_and_influences() {
        let mut s = SpotRecord::new(SpotKind::Output, SourceLoc::default());
        let mut inf = InfluenceSet::new();
        inf.insert(7);
        s.record(10.0, true, &inf);
        s.record(0.0, false, &InfluenceSet::from([3usize]));
        assert_eq!(s.total, 2);
        assert_eq!(s.erroneous, 1);
        assert_eq!(s.max_error, 10.0);
        assert_eq!(s.average_error(), 5.0);
        // Influences from non-erroneous executions are not recorded.
        assert!(s.influences.contains(&7));
        assert!(!s.influences.contains(&3));
    }

    #[test]
    fn spot_kind_labels_match_report_format() {
        assert_eq!(SpotKind::Output.label(), "Output");
        assert_eq!(SpotKind::Branch.label(), "Compare");
        assert_eq!(SpotKind::FloatToInt.label(), "Convert");
    }

    #[test]
    fn op_record_builds_symbolic_expression_over_executions() {
        let config = AnalysisConfig::default();
        let mut rec = OpRecord::new(RealOp::Sub, SourceLoc::default(), &config);
        for x in [1.0_f64, 2.0, 3.0] {
            let leaf = ConcreteExpr::leaf(x);
            let one = ConcreteExpr::leaf(1.0);
            let node = ConcreteExpr::node(
                RealOp::Sub,
                x - 1.0,
                vec![leaf, one],
                0,
                SourceLoc::default(),
            );
            rec.record(&node, if x == 3.0 { 20.0 } else { 0.0 }, x == 3.0, &config);
        }
        assert_eq!(rec.total, 3);
        assert_eq!(rec.erroneous, 1);
        assert_eq!(rec.max_local_error, 20.0);
        let sym = rec.generalizer.current().unwrap();
        assert_eq!(sym.variable_count(), 1);
        assert!(rec.example_problematic.is_some());
        // Characteristics recorded both total and problematic values.
        assert_eq!(rec.characteristics.total.len(), 1);
    }

    #[test]
    fn op_record_average_local_error() {
        let config = AnalysisConfig::default();
        let mut rec = OpRecord::new(RealOp::Add, SourceLoc::default(), &config);
        let node = ConcreteExpr::node(
            RealOp::Add,
            2.0,
            vec![ConcreteExpr::leaf(1.0), ConcreteExpr::leaf(1.0)],
            0,
            SourceLoc::default(),
        );
        rec.record(&node, 4.0, false, &config);
        rec.record(&node, 8.0, true, &config);
        assert_eq!(rec.average_local_error(), 6.0);
    }
}

//! Per-statement analysis records: operation entries and spot entries
//! (Figure 3 of the paper: `ops[pc]` and `spots[pc]`).

use crate::config::AnalysisConfig;
use crate::errsum::ErrorBitsSum;
use crate::inputs::InputCharacteristics;
use crate::symbolic::Generalizer;
use crate::trace::ConcreteExpr;
use fpvm::SourceLoc;
use shadowreal::RealOp;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The set of candidate-root-cause statements (program counters) that
/// influence a value — the "taint" of the influences analysis (§4.2).
pub type InfluenceSet = BTreeSet<usize>;

/// The kind of a spot (§4.2): a place where floating-point error becomes
/// observable program behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpotKind {
    /// A program output.
    Output,
    /// A conditional branch whose predicate reads floating-point values.
    Branch,
    /// A conversion from a floating-point value to an integer.
    FloatToInt,
}

impl SpotKind {
    /// The label used in reports ("Output", "Compare", "Convert"), matching
    /// the paper's report format.
    pub fn label(self) -> &'static str {
        match self {
            SpotKind::Output => "Output",
            SpotKind::Branch => "Compare",
            SpotKind::FloatToInt => "Convert",
        }
    }
}

/// The accumulated record for one spot.
#[derive(Clone, Debug)]
pub struct SpotRecord {
    /// What kind of spot this is.
    pub kind: SpotKind,
    /// Source location of the statement.
    pub location: SourceLoc,
    /// Number of times the spot executed.
    pub total: u64,
    /// Number of executions on which the spot was erroneous: output error
    /// above the threshold, branch divergence, or integer divergence.
    pub erroneous: u64,
    /// Maximum error observed (bits, for outputs; divergences count as the
    /// maximum error for branches/conversions).
    pub max_error: f64,
    /// Sum of observed errors (for the average), accumulated exactly so that
    /// shard-merged records equal serially accumulated ones bit for bit.
    pub total_error: ErrorBitsSum,
    /// Candidate root causes whose influence reached this spot on an
    /// erroneous execution.
    pub influences: InfluenceSet,
}

impl SpotRecord {
    /// Creates an empty record.
    pub fn new(kind: SpotKind, location: SourceLoc) -> SpotRecord {
        SpotRecord {
            kind,
            location,
            total: 0,
            erroneous: 0,
            max_error: 0.0,
            total_error: ErrorBitsSum::new(),
            influences: InfluenceSet::new(),
        }
    }

    /// Records one execution of the spot.
    pub fn record(&mut self, error_bits: f64, erroneous: bool, influences: &InfluenceSet) {
        self.total += 1;
        self.total_error.add(error_bits);
        if error_bits > self.max_error {
            self.max_error = error_bits;
        }
        if erroneous {
            self.erroneous += 1;
            self.influences.extend(influences.iter().copied());
        }
    }

    /// Merges the record of a later input shard into this one. The combined
    /// record is identical to what serial accumulation over the concatenated
    /// inputs produces: every field is a count, an exact sum, a maximum, or a
    /// set union.
    pub fn merge(&mut self, other: &SpotRecord) {
        debug_assert_eq!(self.kind, other.kind, "merging records of different spots");
        self.total += other.total;
        self.erroneous += other.erroneous;
        self.total_error.merge(&other.total_error);
        if other.max_error > self.max_error {
            self.max_error = other.max_error;
        }
        self.influences.extend(other.influences.iter().copied());
    }

    /// The average error over all executions, in bits.
    pub fn average_error(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.total_error.total_bits() / self.total as f64
        }
    }
}

/// The accumulated record for one floating-point operation statement.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// The operation.
    pub op: RealOp,
    /// Source location of the statement.
    pub location: SourceLoc,
    /// Number of times the operation executed.
    pub total: u64,
    /// Number of executions whose local error exceeded the threshold.
    pub erroneous: u64,
    /// Maximum local error observed, in bits.
    pub max_local_error: f64,
    /// Sum of local errors (for the average), accumulated exactly so that
    /// shard-merged records equal serially accumulated ones bit for bit.
    pub total_local_error: ErrorBitsSum,
    /// The incremental anti-unification state producing the symbolic
    /// expression for this operation.
    pub generalizer: Generalizer,
    /// Input characteristics for the symbolic expression's variables.
    pub characteristics: InputCharacteristics,
    /// An example concrete expression observed with high local error, kept
    /// for its leaf values ("Example problematic input" in reports).
    pub example_problematic: Option<Arc<ConcreteExpr>>,
}

impl OpRecord {
    /// Creates an empty record.
    pub fn new(op: RealOp, location: SourceLoc, config: &AnalysisConfig) -> OpRecord {
        OpRecord {
            op,
            location,
            total: 0,
            erroneous: 0,
            max_local_error: 0.0,
            total_local_error: ErrorBitsSum::new(),
            generalizer: Generalizer::new(config.antiunify_equivalence_depth),
            characteristics: InputCharacteristics::default(),
            example_problematic: None,
        }
    }

    /// Records one execution of the operation.
    pub fn record(
        &mut self,
        concrete: &Arc<ConcreteExpr>,
        local_error: f64,
        erroneous: bool,
        config: &AnalysisConfig,
    ) {
        self.record_bounded(concrete, usize::MAX, local_error, erroneous, config);
    }

    /// Records one execution of the operation with the concrete trace viewed
    /// through a depth budget: equivalent to
    /// `record(&concrete.truncate_to_depth(max_depth), ...)` without
    /// materializing the truncation on the hot path. The flat analysis keeps
    /// deeper-than-reported traces in shadow memory (truncating only when
    /// its storage bound overflows) and records through this entry point;
    /// the truncated trace is only built when a problematic example is
    /// actually kept.
    pub fn record_bounded(
        &mut self,
        concrete: &Arc<ConcreteExpr>,
        max_depth: usize,
        local_error: f64,
        erroneous: bool,
        config: &AnalysisConfig,
    ) {
        let had_prior_erroneous = self.erroneous > 0;
        self.total += 1;
        self.total_local_error.add(local_error);
        if local_error > self.max_local_error {
            self.max_local_error = local_error;
        }
        if erroneous {
            self.erroneous += 1;
            if self.example_problematic.is_none() {
                self.example_problematic = Some(concrete.truncate_to_depth(max_depth));
            }
        }
        let assignments = self.generalizer.observe_bounded(concrete, max_depth);
        self.characteristics.apply_assignments(
            &assignments,
            config.range_kind,
            erroneous,
            had_prior_erroneous,
        );
    }

    /// Merges the record of a later input shard into this one: counts, exact
    /// sums, maxima, and the example are combined directly; the two symbolic
    /// expressions are anti-unified ([`Generalizer::merge`]) and the input
    /// characteristics rewired along the merged variables
    /// ([`InputCharacteristics::merged`]). The result matches what serial
    /// accumulation over the concatenated input sweep produces.
    pub fn merge(&mut self, other: &OpRecord, config: &AnalysisConfig) {
        debug_assert_eq!(self.op, other.op, "merging records of different operations");
        let left_had_erroneous = self.erroneous > 0;
        let right_had_erroneous = other.erroneous > 0;
        self.total += other.total;
        self.erroneous += other.erroneous;
        self.total_local_error.merge(&other.total_local_error);
        if other.max_local_error > self.max_local_error {
            self.max_local_error = other.max_local_error;
        }
        if self.example_problematic.is_none() {
            self.example_problematic = other.example_problematic.clone();
        }
        let assignments = self.generalizer.merge(&other.generalizer);
        self.characteristics = InputCharacteristics::merged(
            &self.characteristics,
            &other.characteristics,
            &assignments,
            config.range_kind,
            left_had_erroneous,
            right_had_erroneous,
        );
    }

    /// The average local error over all executions, in bits.
    pub fn average_local_error(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.total_local_error.total_bits() / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;

    #[test]
    fn spot_record_accumulates_errors_and_influences() {
        let mut s = SpotRecord::new(SpotKind::Output, SourceLoc::default());
        let mut inf = InfluenceSet::new();
        inf.insert(7);
        s.record(10.0, true, &inf);
        s.record(0.0, false, &InfluenceSet::from([3usize]));
        assert_eq!(s.total, 2);
        assert_eq!(s.erroneous, 1);
        assert_eq!(s.max_error, 10.0);
        assert_eq!(s.average_error(), 5.0);
        // Influences from non-erroneous executions are not recorded.
        assert!(s.influences.contains(&7));
        assert!(!s.influences.contains(&3));
    }

    #[test]
    fn spot_kind_labels_match_report_format() {
        assert_eq!(SpotKind::Output.label(), "Output");
        assert_eq!(SpotKind::Branch.label(), "Compare");
        assert_eq!(SpotKind::FloatToInt.label(), "Convert");
    }

    #[test]
    fn op_record_builds_symbolic_expression_over_executions() {
        let config = AnalysisConfig::default();
        let mut rec = OpRecord::new(RealOp::Sub, SourceLoc::default(), &config);
        for x in [1.0_f64, 2.0, 3.0] {
            let leaf = ConcreteExpr::leaf(x);
            let one = ConcreteExpr::leaf(1.0);
            let node = ConcreteExpr::node(
                RealOp::Sub,
                x - 1.0,
                vec![leaf, one],
                0,
                SourceLoc::default(),
            );
            rec.record(&node, if x == 3.0 { 20.0 } else { 0.0 }, x == 3.0, &config);
        }
        assert_eq!(rec.total, 3);
        assert_eq!(rec.erroneous, 1);
        assert_eq!(rec.max_local_error, 20.0);
        let sym = rec.generalizer.current().unwrap();
        assert_eq!(sym.variable_count(), 1);
        assert!(rec.example_problematic.is_some());
        // Characteristics recorded both total and problematic values.
        assert_eq!(rec.characteristics.total.len(), 1);
    }

    #[test]
    fn op_record_average_local_error() {
        let config = AnalysisConfig::default();
        let mut rec = OpRecord::new(RealOp::Add, SourceLoc::default(), &config);
        let node = ConcreteExpr::node(
            RealOp::Add,
            2.0,
            vec![ConcreteExpr::leaf(1.0), ConcreteExpr::leaf(1.0)],
            0,
            SourceLoc::default(),
        );
        rec.record(&node, 4.0, false, &config);
        rec.record(&node, 8.0, true, &config);
        assert_eq!(rec.average_local_error(), 6.0);
    }
}

//! Exact accumulation of error-bits values.
//!
//! The analysis sums per-execution error magnitudes (for the "average error"
//! lines of the report). Plain `f64` addition is not associative, so a sum
//! accumulated across input shards and then merged would differ in the last
//! bits from the same sum accumulated serially — breaking the guarantee that
//! [`analyze_parallel`](crate::analysis::analyze_parallel) is bit-identical
//! to [`analyze`](crate::analysis::analyze).
//!
//! Every summed value is a bits-of-error measurement, `log2(1 + ulps)` for
//! an integer ulp distance, clamped to [`shadowreal::MAX_ERROR_BITS`]: either
//! exactly zero or in `[1, 64]`. Doubles in `[1, 64]` have no significand
//! bits below 2⁻⁵², so scaling by 2⁵² maps every possible measurement to an
//! integer below 2⁵⁸, and the sum is accumulated exactly in a `u128` (room
//! for ~2⁷⁰ measurements). Integer addition is associative and commutative,
//! so shard-merged sums equal serial sums exactly; the only rounding happens
//! once, when the total is read back as an `f64`.

/// 2⁵²: the scale factor mapping error-bits doubles onto integers.
const SCALE: f64 = (1u64 << 52) as f64;

/// An exact, order-independent sum of error-bits measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ErrorBitsSum {
    scaled: u128,
}

impl ErrorBitsSum {
    /// The empty sum.
    pub fn new() -> ErrorBitsSum {
        ErrorBitsSum::default()
    }

    /// Adds one error measurement, in bits.
    ///
    /// Values outside the representable grid (possible only if the error
    /// metric changes) are truncated towards zero at 2⁻⁵² resolution —
    /// still deterministically and associatively, so the parallel/serial
    /// guarantee is preserved regardless.
    pub fn add(&mut self, bits: f64) {
        debug_assert!(
            (0.0..=shadowreal::MAX_ERROR_BITS).contains(&bits),
            "error bits out of range: {bits}"
        );
        self.scaled += (bits.max(0.0) * SCALE) as u128;
    }

    /// Adds another sum (exact, so merge order does not matter).
    pub fn merge(&mut self, other: &ErrorBitsSum) {
        self.scaled += other.scaled;
    }

    /// The total, in bits, rounded once to `f64`.
    pub fn total_bits(&self) -> f64 {
        self.scaled as f64 / SCALE
    }

    /// True if nothing (or only zeros) has been added.
    pub fn is_zero(&self) -> bool {
        self.scaled == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadowreal::bits_error;

    #[test]
    fn single_measurements_round_trip_exactly() {
        // Every value of the form log2(1 + ulps) is preserved exactly.
        for ulps in [0u64, 1, 2, 3, 100, 1 << 20, u64::MAX - 1] {
            let bits = ((ulps as f64) + 1.0).log2().min(shadowreal::MAX_ERROR_BITS);
            let mut sum = ErrorBitsSum::new();
            sum.add(bits);
            assert_eq!(sum.total_bits().to_bits(), bits.to_bits(), "ulps {ulps}");
        }
    }

    #[test]
    fn accumulation_is_order_independent() {
        let values: Vec<f64> = (0..1000u64)
            .map(|i| bits_error(1.0, 1.0 + i as f64))
            .collect();
        let mut forward = ErrorBitsSum::new();
        for &v in &values {
            forward.add(v);
        }
        let mut backward = ErrorBitsSum::new();
        for &v in values.iter().rev() {
            backward.add(v);
        }
        assert_eq!(forward, backward);
        // And sharded accumulation merges to the same sum.
        for shards in [2, 3, 7] {
            let mut merged = ErrorBitsSum::new();
            for chunk in values.chunks(values.len().div_ceil(shards)) {
                let mut partial = ErrorBitsSum::new();
                for &v in chunk {
                    partial.add(v);
                }
                merged.merge(&partial);
            }
            assert_eq!(merged, forward, "{shards} shards");
        }
    }

    #[test]
    fn plain_f64_summation_would_not_be_order_independent() {
        // The motivation: the same values summed in different groupings as
        // plain doubles disagree in the low bits.
        let values: Vec<f64> = (1..100u64)
            .map(|i| bits_error(1.0, 1.0 + 1.0 / i as f64))
            .collect();
        let serial: f64 = values.iter().sum();
        let halves: f64 = values[..50].iter().sum::<f64>() + values[50..].iter().sum::<f64>();
        assert_ne!(serial.to_bits(), halves.to_bits());
    }

    #[test]
    fn maximal_errors_accumulate_without_loss() {
        let mut sum = ErrorBitsSum::new();
        for _ in 0..1_000_000 {
            sum.add(shadowreal::MAX_ERROR_BITS);
        }
        assert_eq!(sum.total_bits(), 64.0 * 1_000_000.0);
    }
}

//! Local error (§4.2, Figure 4).
//!
//! *Local error* measures the error an operation introduces by itself: the
//! operation is evaluated (a) exactly, on the exact (shadow) inputs, and then
//! rounded to a double, and (b) in double precision on the exact inputs
//! rounded to doubles. The distance between the two, in bits, is the
//! operation's local error. Using local error — rather than the difference
//! between the client value and the shadow — avoids blaming an operation for
//! error that its operands already carried (the paper's "avoid blaming
//! innocent operations for erroneous operands").

use shadowreal::{bits_error, Real, RealOp, MAX_ARITY};

/// The operand list passed to [`local_error`] was empty.
///
/// Every float operation has at least one operand (the machine validates
/// arity before tracing), so this indicates a malformed caller, not a
/// property of the analyzed program — it is reported as a typed error
/// rather than a panic so that release builds embedding the analysis
/// degrade gracefully.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NoOperands(
    /// The operation that was invoked without operands.
    pub RealOp,
);

impl std::fmt::Display for NoOperands {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no operands for {}", self.0)
    }
}

impl std::error::Error for NoOperands {}

/// Computes the local error, in bits, of applying `op` to operands whose
/// exact values are `exact_args`.
///
/// Returns the local error together with the exact result (so the caller does
/// not need to recompute it for the shadow update).
///
/// # Errors
///
/// Returns [`NoOperands`] when `exact_args` is empty — every real operation
/// has at least one operand, so this only happens on a malformed call.
pub fn local_error<R: Real>(op: RealOp, exact_args: &[R]) -> Result<(f64, R), NoOperands> {
    let Some(first) = exact_args.first() else {
        return Err(NoOperands(op));
    };
    let mut refs: [&R; MAX_ARITY] = [first; MAX_ARITY];
    for (slot, arg) in refs.iter_mut().zip(exact_args) {
        *slot = arg;
    }
    Ok(local_error_ref(op, &refs[..exact_args.len()]))
}

/// Computes the local error like [`local_error`], with the operands passed
/// by reference — the form the analysis hot loop uses, so that shadow values
/// never leave the slot table (no per-operand clone) and the rounded
/// operands live on the stack (no per-op allocation).
///
/// `exact_args` must be non-empty (checked with a `debug_assert`; the
/// machine validates operation arity before any tracer callback fires, so
/// the hot path does not re-check in release builds).
pub fn local_error_ref<R: Real>(op: RealOp, exact_args: &[&R]) -> (f64, R) {
    debug_assert!(!exact_args.is_empty(), "no operands for {op}");
    let exact_result = R::apply_ref(op, exact_args);
    let exact_rounded = exact_result.to_f64();
    let mut rounded = [0.0f64; MAX_ARITY];
    for (slot, arg) in rounded.iter_mut().zip(exact_args) {
        *slot = arg.to_f64();
    }
    let float_result = <f64 as Real>::apply(op, &rounded[..exact_args.len()]);
    (bits_error(float_result, exact_rounded), exact_result)
}

/// Computes the total error, in bits, between a client-computed double and
/// the exact shadow value.
pub fn total_error<R: Real>(client: f64, shadow: &R) -> f64 {
    bits_error(client, shadow.to_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadowreal::BigFloat;

    fn big(values: &[f64]) -> Vec<BigFloat> {
        values.iter().map(|&v| BigFloat::from_f64(v)).collect()
    }

    fn local_error<R: Real>(op: RealOp, exact_args: &[R]) -> (f64, R) {
        super::local_error(op, exact_args).expect("operands provided")
    }

    #[test]
    fn empty_operands_are_a_typed_error_not_a_panic() {
        let err = super::local_error::<BigFloat>(RealOp::Add, &[]).unwrap_err();
        assert_eq!(err, NoOperands(RealOp::Add));
        assert_eq!(err.to_string(), "no operands for +");
    }

    #[test]
    fn exact_operations_have_no_local_error() {
        let (err, result) = local_error(RealOp::Add, &big(&[1.0, 2.0]));
        assert_eq!(err, 0.0);
        assert_eq!(result.to_f64(), 3.0);
        let (err, _) = local_error(RealOp::Mul, &big(&[1.5, 4.0]));
        assert_eq!(err, 0.0);
    }

    #[test]
    fn correctly_rounded_operations_have_tiny_local_error() {
        // 1/3 is inexact but correctly rounded: local error below one bit.
        let (err, _) = local_error(RealOp::Div, &big(&[1.0, 3.0]));
        assert!(err <= 1.0, "got {err}");
        let (err, _) = local_error(RealOp::Sqrt, &big(&[2.0]));
        assert!(err <= 1.0, "got {err}");
    }

    #[test]
    fn catastrophic_cancellation_has_high_local_error() {
        // Subtracting two nearly equal values: the operands are exact, yet the
        // float subtraction of their roundings loses everything relative to
        // the exact subtraction.
        let a = BigFloat::from_f64(1.0).add(&BigFloat::from_f64(1e-17));
        let b = BigFloat::from_f64(1.0);
        let (err, exact) = local_error(RealOp::Sub, &[a, b]);
        assert!(err > 40.0, "got {err}");
        assert!(exact.to_f64() > 0.0);
    }

    #[test]
    fn erroneous_inputs_do_not_create_local_error() {
        // The key property: an operation on operands that are *already wrong*
        // (exact values differ from what the client has) is not blamed as
        // long as the operation itself is benign. Local error only looks at
        // the exact inputs.
        // Exact input happens to be 1 + 2^-60 (client would have rounded to 1).
        let exact_in = BigFloat::from_f64(1.0).add(&BigFloat::from_f64(2.0_f64.powi(-60)));
        let (err, _) = local_error(RealOp::Mul, &[exact_in, BigFloat::from_f64(8.0)]);
        assert!(err <= 1.0, "multiplication blamed unfairly: {err}");
    }

    #[test]
    fn underflowed_exact_inputs_register_local_error() {
        // The exact operand is a tiny nonzero value that rounds to 0.0 in
        // doubles: the float log explodes to -inf while the exact log is a
        // modest finite number, so the operation has large local error.
        let tiny = BigFloat::from_f64(1e-300).mul(&BigFloat::from_f64(1e-300));
        let (err, _) = local_error(RealOp::Log, &[tiny]);
        assert!(err > 50.0, "got {err}");
    }

    #[test]
    fn total_error_compares_client_to_shadow() {
        let shadow = BigFloat::from_f64(1.0);
        assert_eq!(total_error(1.0, &shadow), 0.0);
        assert!(total_error(0.0, &shadow) > 50.0);
    }

    #[test]
    fn library_calls_measure_against_exact_evaluation() {
        // sin evaluated at a double is correctly rounded by libm to within a
        // few ulps; local error must be small.
        let (err, _) = local_error(RealOp::Sin, &big(&[1.0]));
        assert!(err <= 2.0, "got {err}");
        let (err, _) = local_error(RealOp::Atan2, &big(&[1.0, -2.0]));
        assert!(err <= 2.0, "got {err}");
    }
}

//! Herbgrind: finding root causes of floating-point error.
//!
//! This crate is the primary contribution of the reproduced paper
//! ("Finding Root Causes of Floating Point Error", PLDI 2018). It implements
//! the dynamic analysis of §4–§6 over the abstract float machine provided by
//! the [`fpvm`] crate:
//!
//! * **Shadow reals** — every client double is shadowed by a high-precision
//!   value ([`shadowreal::BigFloat`] by default), so rounding error is
//!   observable ([`shadow`]).
//! * **Spots and influences** — program outputs, float-controlled branches
//!   and float→int conversions are *spots*; operations whose *local error*
//!   exceeds a threshold are candidate root causes, and a taint analysis
//!   tracks which candidates influence which spots ([`localerr`],
//!   [`records`]).
//! * **Symbolic expressions** — a concrete expression is recorded for every
//!   float value and generalized across executions by depth-bounded
//!   anti-unification, abstracting over function boundaries and heap
//!   traffic ([`trace`], [`symbolic`]).
//! * **Input characteristics** — for each symbolic expression the analysis
//!   summarizes the inputs it was evaluated on, and separately the inputs
//!   that caused high local error ([`inputs`]).
//! * **Expert-trick handling** — compensating additions/subtractions are
//!   detected so that Kahan-style compensation is not reported as a false
//!   positive ([`analysis`], §5.3).
//!
//! The entry point is [`Herbgrind`], a [`fpvm::Tracer`] that can be attached
//! to any machine run, plus the [`analyze`] convenience function that runs a
//! program over a set of inputs and produces a [`Report`].
//!
//! # Example
//!
//! ```
//! use fpcore::parse_core;
//! use fpvm::compile_core;
//! use herbgrind::{analyze, AnalysisConfig};
//!
//! // sqrt(x+1) - sqrt(x) suffers catastrophic cancellation for large x.
//! let core = parse_core("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
//! let program = compile_core(&core, Default::default()).unwrap();
//! let inputs: Vec<Vec<f64>> = (0..30).map(|i| vec![10f64.powi(i / 2)]).collect();
//! let report = analyze(&program, &inputs, &AnalysisConfig::default()).unwrap();
//! assert!(report.has_significant_error());
//! let cause = &report.spots[0].root_causes[0];
//! assert!(cause.fpcore.contains("sqrt"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod batched;
pub mod config;
pub mod errsum;
#[cfg(feature = "fault-injection")]
pub mod faultinject;
pub mod inputs;
pub mod localerr;
pub mod observe;
pub mod quarantine;
pub mod records;
#[cfg(feature = "reference-analysis")]
pub mod reference;
pub mod report;
pub mod symbolic;
pub mod tiered;
pub mod trace;

pub use analysis::AnalysisState;
pub use analysis::{
    analyze, analyze_parallel, analyze_parallel_with_shadow, analyze_with_shadow, Herbgrind,
};
pub use batched::{
    analyze_batched, analyze_batched_with_shadow, probe_local_error, BatchHerbgrind, DdErrorProbe,
    LocalErrorSummary, SUPPORTED_BATCH_WIDTHS,
};
pub use config::{AnalysisConfig, RangeKind};
pub use errsum::ErrorBitsSum;
pub use observe::{
    analyze_batched_isolated_telemetry, analyze_batched_telemetry, analyze_isolated_telemetry,
    analyze_parallel_isolated_telemetry, analyze_parallel_telemetry, analyze_telemetry,
    analyze_tiered_isolated_telemetry, analyze_tiered_telemetry,
};
pub use quarantine::{
    analyze_batched_isolated, analyze_isolated, analyze_isolated_with_shadow,
    analyze_parallel_isolated, analyze_tiered_isolated, analyze_tiered_isolated_with_stats,
    QuarantinedInput, SweepFault, SweepStage,
};
pub use report::{Report, RootCauseReport, SpotReport};
pub use symbolic::SymbolicExpr;
pub use tiered::{analyze_tiered, analyze_tiered_with_stats, CertifyProbe, TierStats};
pub use trace::{ConcreteExpr, ExprInterner};

pub use staticerr;
pub use telemetry;
pub use telemetry::{telemetry_to_json, SweepCapture, SweepTelemetry, TelemetryMode};

//! Deterministic fault injection for the fault-isolated drivers.
//!
//! Compiled in only under the `fault-injection` cargo feature, this module
//! lets tests force failures at chosen sites — keyed on sweep-global input
//! index × statement pc × pipeline stage — and prove the isolation layer's
//! guarantees: no fault configuration loses a non-faulted input's records,
//! quarantine lists are deterministic across thread counts and batch
//! widths, and degraded reports are bit-identical to analyzing the
//! surviving inputs alone.
//!
//! A plan is installed process-globally through [`install`], which returns a
//! guard serializing injection tests against each other; the isolated
//! drivers arm each run with its input index and stage, and every compute
//! observation consults the plan through [`query`]. Only the fault-isolated
//! drivers arm injection — the plain drivers never consult the plan, so the
//! oracle sweeps the suites compare against stay uninjected even while a
//! plan is installed.

use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard, RwLock};

/// What an injected fault does at its site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum InjectKind {
    /// Panic in the analysis observer, modeling a crashing shadow op.
    Panic,
    /// Latch a [`fpvm::MachineError::StepBudgetExceeded`] fault.
    StepBudget,
    /// Latch a [`fpvm::MachineError::DeadlineExceeded`] fault.
    Deadline,
    /// Latch a [`fpvm::MachineError::TraceBudgetExceeded`] fault.
    TraceBudget,
    /// Replace the exact shadow result with NaN (serial stages only): the
    /// analysis must absorb the poison without crashing or quarantining.
    NanPoison,
    /// Force the input out of the certified tier at certify time, then fail
    /// the `BigFloat` escalation tier itself (a panic at the injection
    /// site), so the whole retry ladder is exercised and the input ends up
    /// quarantined.
    TierEscalation,
}

/// The pipeline stage a run executes in, armed per run by the isolated
/// drivers and matched against [`FaultSpec::stage`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum InjectStage {
    /// The serial driver's sweep loop.
    Serial,
    /// A thread shard of the parallel driver (serial execution per shard).
    Parallel,
    /// A batched lane group of the batched driver.
    Batched,
    /// The tiered driver's certification probe (verdict time).
    TieredCertify,
    /// The tiered driver's certified (`DoubleDouble`) tier.
    TieredDoubleDouble,
    /// The tiered driver's escalation (`BigFloat`) tier — also armed for
    /// reference-tier retries.
    TieredBigFloat,
}

/// One injection site: all `None` filters match everything.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Sweep-global input index to fault, or `None` for every input.
    pub input_index: Option<usize>,
    /// Statement pc to fault at, or `None` for every statement.
    pub pc: Option<usize>,
    /// Pipeline stage filter, or `None` for every stage.
    pub stage: Option<InjectStage>,
    /// What the fault does.
    pub kind: InjectKind,
}

impl FaultSpec {
    /// A spec faulting one input at every pc and stage.
    pub fn input(input_index: usize, kind: InjectKind) -> FaultSpec {
        FaultSpec {
            input_index: Some(input_index),
            pc: None,
            stage: None,
            kind,
        }
    }

    /// Narrows the spec to one statement pc.
    pub fn at_pc(mut self, pc: usize) -> FaultSpec {
        self.pc = Some(pc);
        self
    }

    /// Narrows the spec to one pipeline stage.
    pub fn in_stage(mut self, stage: InjectStage) -> FaultSpec {
        self.stage = Some(stage);
        self
    }

    fn matches(&self, input_index: usize, pc: usize, stage: InjectStage) -> bool {
        self.input_index.is_none_or(|ix| ix == input_index)
            && self.pc.is_none_or(|p| p == pc)
            && self.stage.is_none_or(|s| s == stage)
    }
}

/// Seeded pseudo-random injection: the fault fires at sites where a
/// deterministic hash of `(seed, input_index, pc)` lands below the rate.
/// The same seed reproduces the same fault set on every machine, thread
/// count, and batch width — the decision depends only on the keyed site.
#[derive(Clone, Debug)]
pub struct SeededFaults {
    /// Hash seed.
    pub seed: u64,
    /// Fire at roughly one in `one_in` (input, pc) sites; `0` never fires.
    pub one_in: u32,
    /// What the fault does.
    pub kind: InjectKind,
    /// Optional stage filter.
    pub stage: Option<InjectStage>,
}

impl SeededFaults {
    fn query(&self, input_index: usize, pc: usize, stage: InjectStage) -> Option<InjectKind> {
        if self.one_in == 0 || self.stage.is_some_and(|s| s != stage) {
            return None;
        }
        let key = self
            .seed
            .wrapping_add((input_index as u64) << 32)
            .wrapping_add(pc as u64);
        splitmix64(key)
            .is_multiple_of(u64::from(self.one_in))
            .then_some(self.kind)
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed deterministic hash with no
/// external dependency.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A full injection plan: explicit site specs (first match wins) plus an
/// optional seeded background.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Explicit injection sites, consulted in order.
    pub specs: Vec<FaultSpec>,
    /// Seeded pseudo-random background faults.
    pub seeded: Option<SeededFaults>,
}

impl FaultPlan {
    /// A plan with the given explicit sites and no seeded background.
    pub fn sites(specs: Vec<FaultSpec>) -> FaultPlan {
        FaultPlan {
            specs,
            seeded: None,
        }
    }
}

/// One fault site at which an installed plan actually fired: the query key
/// plus the kind it resolved to. Sites are deduplicated — a fault that fires
/// repeatedly at the same `(input, pc, stage)` (retry-ladder rungs, batched
/// re-dispatch) records one entry — so the set depends only on the plan and
/// the input sweep, not on thread count or batch width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FiredSite {
    /// Sweep-global input index the fault fired for.
    pub input_index: usize,
    /// Statement pc the fault fired at.
    pub pc: usize,
    /// Pipeline stage the faulted run was armed with.
    pub stage: InjectStage,
    /// What the fault did.
    pub kind: InjectKind,
}

static EXCLUSIVE: Mutex<()> = Mutex::new(());
static PLAN: RwLock<Option<FaultPlan>> = RwLock::new(None);
static FIRED: Mutex<BTreeSet<FiredSite>> = Mutex::new(BTreeSet::new());

/// Keeps the installed plan alive; uninstalls it (and releases the
/// test-serialization lock) on drop.
#[derive(Debug)]
pub struct FaultGuard {
    _exclusive: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        *PLAN.write().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Installs a plan process-globally. The returned guard serializes
/// injection tests: a second `install` blocks until the first guard drops,
/// so concurrently running `#[test]`s cannot observe each other's plans.
pub fn install(plan: FaultPlan) -> FaultGuard {
    let exclusive = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    FIRED.lock().unwrap_or_else(|e| e.into_inner()).clear();
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = Some(plan);
    FaultGuard {
        _exclusive: exclusive,
    }
}

/// The distinct sites at which the installed plan has fired since the last
/// [`install`], in sorted (deterministic) order. The set survives the
/// [`FaultGuard`] drop so a test can uninstall the plan before auditing which
/// faults actually landed.
pub fn fired_sites() -> Vec<FiredSite> {
    FIRED
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .copied()
        .collect()
}

/// Consults the installed plan for one site. Returns the first matching
/// explicit spec's kind, then the seeded background's verdict.
pub(crate) fn query(input_index: usize, pc: usize, stage: InjectStage) -> Option<InjectKind> {
    let kind = {
        let plan = PLAN.read().unwrap_or_else(|e| e.into_inner());
        let plan = plan.as_ref()?;
        plan.specs
            .iter()
            .find(|spec| spec.matches(input_index, pc, stage))
            .map(|spec| spec.kind)
            .or_else(|| {
                plan.seeded
                    .as_ref()
                    .and_then(|seeded| seeded.query(input_index, pc, stage))
            })
    };
    if let Some(kind) = kind {
        telemetry::FAULTINJECT_FIRED.incr();
        FIRED
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(FiredSite {
                input_index,
                pc,
                stage,
                kind,
            });
    }
    kind
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_filter_on_every_key() {
        let _guard = install(FaultPlan::sites(vec![FaultSpec::input(
            3,
            InjectKind::Panic,
        )
        .at_pc(7)
        .in_stage(InjectStage::Batched)]));
        assert_eq!(query(3, 7, InjectStage::Batched), Some(InjectKind::Panic));
        assert_eq!(query(3, 7, InjectStage::Serial), None);
        assert_eq!(query(3, 8, InjectStage::Batched), None);
        assert_eq!(query(2, 7, InjectStage::Batched), None);
    }

    #[test]
    fn seeded_faults_are_reproducible_and_site_keyed() {
        let seeded = SeededFaults {
            seed: 42,
            one_in: 4,
            kind: InjectKind::StepBudget,
            stage: None,
        };
        let first: Vec<_> = (0..64)
            .map(|ix| seeded.query(ix, ix * 3, InjectStage::Serial))
            .collect();
        let second: Vec<_> = (0..64)
            .map(|ix| seeded.query(ix, ix * 3, InjectStage::Serial))
            .collect();
        assert_eq!(first, second);
        assert!(first.iter().any(Option::is_some), "rate 1/4 over 64 sites");
        assert!(first.iter().any(Option::is_none));
    }

    #[test]
    fn fired_sites_deduplicate_and_survive_guard_drop() {
        let guard = install(FaultPlan::sites(vec![FaultSpec::input(
            3,
            InjectKind::Panic,
        )]));
        assert!(fired_sites().is_empty(), "install clears prior fires");
        query(3, 7, InjectStage::Batched);
        query(3, 7, InjectStage::Batched);
        query(2, 7, InjectStage::Batched);
        assert_eq!(
            fired_sites(),
            vec![FiredSite {
                input_index: 3,
                pc: 7,
                stage: InjectStage::Batched,
                kind: InjectKind::Panic,
            }]
        );
        drop(guard);
        assert_eq!(fired_sites().len(), 1, "sites outlive the guard");
    }

    #[test]
    fn uninstalling_clears_the_plan() {
        {
            let _guard = install(FaultPlan::sites(vec![FaultSpec::input(
                0,
                InjectKind::Panic,
            )]));
            assert!(query(0, 0, InjectStage::Serial).is_some());
        }
        assert!(query(0, 0, InjectStage::Serial).is_none());
    }
}

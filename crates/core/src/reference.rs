//! The retained map-based analysis implementation.
//!
//! This is the pre-flat-slot-table Herbgrind analysis, kept verbatim as a
//! *reference path*: associative containers (`HashMap` shadow memory,
//! `BTreeMap` records), a `Shadow::clone` per operand, a `SourceLoc` clone
//! per traced event, and an `AnalysisConfig` clone per operation. It exists
//! for two reasons:
//!
//! 1. **Equivalence testing** — the flat [`crate::analysis::Herbgrind`] must
//!    produce bit-identical reports; the property and golden test suites
//!    compare the two end to end across random programs and the benchmark
//!    suite.
//! 2. **Benchmarking** — the `analysis_sweep` bench measures both paths in
//!    the same run, so the speedup of the flat layout is reproducible on any
//!    machine (the committed `BENCH_analysis_sweep.json` is produced that
//!    way).
//!
//! It is not part of the supported API surface: use
//! [`crate::analyze`](crate::analysis::analyze) and friends for real
//! analyses.

use crate::config::AnalysisConfig;
use crate::localerr::{local_error, total_error};
use crate::records::{InfluenceSet, OpRecord, SpotKind, SpotRecord};
use crate::report::Report;
use crate::trace::{ConcreteExpr, ExprInterner};
use fpcore::CmpOp;
use fpvm::{Addr, Machine, MachineError, Program, SourceLoc, Tracer, Value};
use shadowreal::{BigFloat, Real, RealOp, MAX_ERROR_BITS};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The shadow of one memory location (reference layout).
#[derive(Clone, Debug)]
struct Shadow<R> {
    real: R,
    expr: Arc<ConcreteExpr>,
    influences: InfluenceSet,
}

/// The map-based Herbgrind analysis, retained as the reference
/// implementation for the flat [`crate::analysis::Herbgrind`]. See the
/// module docs for why it exists; its behaviour (and its per-op clones and
/// map lookups) is deliberately frozen.
#[derive(Debug)]
pub struct ReferenceHerbgrind<R: Real> {
    config: AnalysisConfig,
    shadows: HashMap<Addr, Shadow<R>>,
    interner: ExprInterner,
    ops: BTreeMap<usize, OpRecord>,
    spots: BTreeMap<usize, SpotRecord>,
    locations: Vec<SourceLoc>,
    program_name: String,
    runs: u64,
    compensations_detected: u64,
    branch_divergences: u64,
}

impl<R: Real> ReferenceHerbgrind<R> {
    /// Creates an analysis with the given configuration, normalized like
    /// the optimized implementation ([`AnalysisConfig::normalize`]) so the
    /// two stay comparable under invariant-violating struct literals.
    pub fn new(config: AnalysisConfig) -> ReferenceHerbgrind<R> {
        ReferenceHerbgrind {
            config: config.normalize(),
            shadows: HashMap::new(),
            interner: ExprInterner::new(),
            ops: BTreeMap::new(),
            spots: BTreeMap::new(),
            locations: Vec::new(),
            program_name: String::new(),
            runs: 0,
            compensations_detected: 0,
            branch_divergences: 0,
        }
    }

    /// The number of runs observed so far.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Per-statement operation records.
    pub fn op_records(&self) -> &BTreeMap<usize, OpRecord> {
        &self.ops
    }

    fn shadow_leaf(&self, value: f64) -> R {
        R::from_f64_prec(value, self.config.shadow_precision)
    }

    fn location(&self, pc: usize) -> SourceLoc {
        self.locations.get(pc).cloned().unwrap_or_default()
    }

    /// Returns the shadow for an address by value — the per-operand
    /// `Shadow::clone` the flat implementation eliminates.
    fn shadow_of(&mut self, addr: Addr, client_value: f64) -> Shadow<R> {
        if let Some(existing) = self.shadows.get(&addr) {
            return existing.clone();
        }
        let fresh = Shadow {
            real: self.shadow_leaf(client_value),
            expr: self.interner.leaf(client_value),
            influences: InfluenceSet::new(),
        };
        self.shadows.insert(addr, fresh.clone());
        fresh
    }

    fn detect_compensation(
        &self,
        op: RealOp,
        exact_args: &[R],
        arg_values: &[f64],
        exact_result: &R,
        client_result: f64,
    ) -> Option<usize> {
        if !self.config.detect_compensation || !matches!(op, RealOp::Add | RealOp::Sub) {
            return None;
        }
        for (i, exact_arg) in exact_args.iter().enumerate() {
            let passes_through = if op == RealOp::Sub && i == 1 {
                false
            } else {
                exact_result.eq_value(exact_arg)
            };
            if !passes_through {
                continue;
            }
            let output_error = total_error(client_result, exact_result);
            let arg_error = total_error(arg_values[i], exact_arg);
            if output_error <= arg_error {
                return Some(i);
            }
        }
        None
    }

    /// Merges the state of a later input shard into this one (same contract
    /// as [`crate::analysis::Herbgrind::merge`]).
    pub fn merge(&mut self, other: ReferenceHerbgrind<R>) {
        if self.locations.is_empty() {
            self.locations = other.locations;
            self.program_name = other.program_name;
        }
        self.runs += other.runs;
        self.compensations_detected += other.compensations_detected;
        self.branch_divergences += other.branch_divergences;
        self.interner.clear();
        drop(other.interner);
        for (pc, record) in other.ops {
            match self.ops.entry(pc) {
                std::collections::btree_map::Entry::Occupied(mut existing) => {
                    existing.get_mut().merge(&record, &self.config);
                }
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(record);
                }
            }
        }
        for (pc, record) in other.spots {
            match self.spots.entry(pc) {
                std::collections::btree_map::Entry::Occupied(mut existing) => {
                    existing.get_mut().merge(&record);
                }
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(record);
                }
            }
        }
    }

    /// Produces the final report.
    pub fn report(&self) -> Report {
        Report::build(
            &self.program_name,
            &self.config,
            self.ops.iter().map(|(&pc, record)| (pc, record)),
            self.spots.iter().map(|(&pc, record)| (pc, record)),
            self.runs,
            self.compensations_detected,
            self.branch_divergences,
        )
    }
}

impl<R: Real> Tracer for ReferenceHerbgrind<R> {
    fn on_start(&mut self, program: &Program, _args: &[f64]) {
        self.shadows.clear();
        self.interner.clear();
        if self.locations.is_empty() {
            self.locations = program.locations.clone();
            self.program_name = program.name.clone();
        }
        self.runs += 1;
    }

    fn on_const_f(&mut self, _pc: usize, dest: Addr, value: f64) {
        let shadow = Shadow {
            real: self.shadow_leaf(value),
            expr: self.interner.leaf(value),
            influences: InfluenceSet::new(),
        };
        self.shadows.insert(dest, shadow);
    }

    fn on_const_i(&mut self, _pc: usize, dest: Addr, _value: i64) {
        self.shadows.remove(&dest);
    }

    fn on_copy(&mut self, _pc: usize, dest: Addr, src: Addr, value: Value) {
        match self.shadows.get(&src).cloned() {
            Some(shadow) => {
                self.shadows.insert(dest, shadow);
            }
            None => {
                if let Value::F(v) = value {
                    let fresh = Shadow {
                        real: self.shadow_leaf(v),
                        expr: self.interner.leaf(v),
                        influences: InfluenceSet::new(),
                    };
                    self.shadows.insert(src, fresh.clone());
                    self.shadows.insert(dest, fresh);
                } else {
                    self.shadows.remove(&dest);
                }
            }
        }
    }

    fn on_compute(
        &mut self,
        pc: usize,
        op: RealOp,
        dest: Addr,
        args: &[Addr],
        arg_values: &[f64],
        result: f64,
    ) {
        // Per-operand map lookups and clones — the costs the flat layout
        // strips out.
        let mut exact_args = Vec::with_capacity(args.len());
        let mut arg_exprs = Vec::with_capacity(args.len());
        let mut influences = InfluenceSet::new();
        for (&addr, &value) in args.iter().zip(arg_values) {
            let shadow = self.shadow_of(addr, value);
            exact_args.push(shadow.real.clone());
            arg_exprs.push(Arc::clone(&shadow.expr));
            influences.extend(shadow.influences.iter().copied());
        }

        // The machine validates arity before tracing, so the operand list is
        // never empty; if a malformed embedding calls in without operands,
        // skip the observation instead of panicking.
        let Ok((local_err, exact_result)) = local_error(op, &exact_args) else {
            return;
        };
        let erroneous = local_err > self.config.local_error_threshold;

        let compensation =
            self.detect_compensation(op, &exact_args, arg_values, &exact_result, result);
        if let Some(passthrough_index) = compensation {
            self.compensations_detected += 1;
            influences.clear();
            let shadow = self.shadow_of(args[passthrough_index], arg_values[passthrough_index]);
            influences.extend(shadow.influences.iter().copied());
        } else if erroneous {
            influences.insert(pc);
        }

        let location = self.location(pc);
        let depth = 1 + arg_exprs.iter().map(|c| c.depth()).max().unwrap_or(0);
        let node = if depth <= self.config.max_expression_depth {
            self.interner.node(op, result, arg_exprs, pc, location)
        } else {
            ConcreteExpr::node(op, result, arg_exprs, pc, location)
                .truncate_to_depth(self.config.max_expression_depth)
        };

        if compensation.is_none() {
            let location = self.location(pc);
            let config = self.config.clone();
            let record = self
                .ops
                .entry(pc)
                .or_insert_with(|| OpRecord::new(op, location, &config));
            record.record(&node, local_err, erroneous, &config);
        }

        self.shadows.insert(
            dest,
            Shadow {
                real: exact_result,
                expr: node,
                influences,
            },
        );
    }

    fn on_cast_to_int(&mut self, pc: usize, dest: Addr, src: Addr, value: f64, result: i64) {
        let shadow = self.shadow_of(src, value);
        let shadow_int = shadow.real.to_f64().trunc();
        let diverged = shadow_int as i64 != result;
        let error = if diverged { MAX_ERROR_BITS } else { 0.0 };
        let location = self.location(pc);
        let record = self
            .spots
            .entry(pc)
            .or_insert_with(|| SpotRecord::new(SpotKind::FloatToInt, location));
        record.record(error, diverged, &shadow.influences);
        self.shadows.remove(&dest);
    }

    fn on_branch(
        &mut self,
        pc: usize,
        cmp: CmpOp,
        lhs: Addr,
        rhs: Addr,
        lhs_value: Value,
        rhs_value: Value,
        taken: bool,
    ) {
        let lhs_shadow = self.shadow_of(lhs, lhs_value.as_f64());
        let rhs_shadow = self.shadow_of(rhs, rhs_value.as_f64());
        let shadow_taken = cmp.holds(lhs_shadow.real.compare(&rhs_shadow.real));
        let diverged = shadow_taken != taken;
        if diverged {
            self.branch_divergences += 1;
        }
        let mut influences = InfluenceSet::new();
        influences.extend(lhs_shadow.influences.iter().copied());
        influences.extend(rhs_shadow.influences.iter().copied());
        let error = if diverged { MAX_ERROR_BITS } else { 0.0 };
        let location = self.location(pc);
        let record = self
            .spots
            .entry(pc)
            .or_insert_with(|| SpotRecord::new(SpotKind::Branch, location));
        record.record(error, diverged, &influences);
    }

    fn on_output(&mut self, pc: usize, src: Addr, value: f64) {
        let shadow = self.shadow_of(src, value);
        let error = if value.is_nan() {
            MAX_ERROR_BITS
        } else {
            total_error(value, &shadow.real)
        };
        let erroneous = error > self.config.output_error_threshold;
        let location = self.location(pc);
        let record = self
            .spots
            .entry(pc)
            .or_insert_with(|| SpotRecord::new(SpotKind::Output, location));
        record.record(error, erroneous, &shadow.influences);
    }
}

/// Runs a program under the reference analysis for every input vector with
/// the default [`BigFloat`] shadow; see the module docs for when to use it.
///
/// # Errors
///
/// Propagates [`MachineError`] from the underlying interpreter.
pub fn analyze_reference(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<Report, MachineError> {
    analyze_with_shadow_reference::<BigFloat>(program, inputs, config)
}

/// Runs a program under the reference analysis with an explicit shadow-real
/// type.
///
/// # Errors
///
/// Propagates [`MachineError`] from the underlying interpreter.
pub fn analyze_with_shadow_reference<R: Real>(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<Report, MachineError> {
    let mut analysis = ReferenceHerbgrind::<R>::new(config.clone());
    let machine = Machine::new(program).with_step_limit(config.step_limit);
    for input in inputs {
        machine.run_traced(input, &mut analysis)?;
    }
    Ok(analysis.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use fpcore::parse_core;
    use fpvm::compile_core;

    #[test]
    fn reference_path_matches_flat_path_on_a_cancellation_kernel() {
        let core = parse_core("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let inputs: Vec<Vec<f64>> = (0..24).map(|i| vec![10f64.powi(i)]).collect();
        let config = AnalysisConfig::default();
        let flat = analyze(&program, &inputs, &config).unwrap();
        let reference = analyze_reference(&program, &inputs, &config).unwrap();
        assert!(flat.has_significant_error());
        assert_eq!(format!("{flat:?}"), format!("{reference:?}"));
        assert_eq!(flat.to_text(), reference.to_text());
    }

    #[test]
    fn reference_merge_matches_one_sweep() {
        let core = parse_core("(FPCore (x) (- (+ x 1) x))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![10f64.powi(i)]).collect();
        let config = AnalysisConfig::default();
        let machine = Machine::new(&program);

        let mut whole = ReferenceHerbgrind::<BigFloat>::new(config.clone());
        for input in &inputs {
            machine.run_traced(input, &mut whole).unwrap();
        }
        let mut merged: Option<ReferenceHerbgrind<BigFloat>> = None;
        for chunk in inputs.chunks(6) {
            let mut shard = ReferenceHerbgrind::<BigFloat>::new(config.clone());
            for input in chunk {
                machine.run_traced(input, &mut shard).unwrap();
            }
            match &mut merged {
                Some(acc) => acc.merge(shard),
                None => merged = Some(shard),
            }
        }
        let merged = merged.unwrap();
        assert_eq!(merged.runs(), whole.runs());
        assert_eq!(
            format!("{:?}", merged.report()),
            format!("{:?}", whole.report())
        );
    }
}

//! Analysis configuration: the tunable parameters explored in §8.2.

/// Which kind of input-range characteristic to compute (Figure 5b).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RangeKind {
    /// Do not track ranges (only a representative example input).
    None,
    /// Track a single `[min, max]` range per variable.
    Single,
    /// Track separate ranges for negative and positive values of each
    /// variable.
    SignSplit,
}

/// Configuration for a Herbgrind analysis run.
///
/// The defaults correspond to the paper's default configuration; each field
/// maps to one of the knobs varied in the evaluation (§8).
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// Local-error threshold `Tℓ` in bits: operations whose local error
    /// exceeds this are candidate root causes (Figure 5a varies this).
    pub local_error_threshold: f64,
    /// Output-error threshold `Tm` in bits: spots whose error exceeds this
    /// report their influences.
    pub output_error_threshold: f64,
    /// Maximum depth of tracked concrete/symbolic expressions (Figures 5c and
    /// 5d vary this); depth 1 reports only the erroneous operation itself,
    /// like FpDebug.
    pub max_expression_depth: usize,
    /// Depth to which subtree equivalence is computed during
    /// anti-unification (§6.1; default 5).
    pub antiunify_equivalence_depth: usize,
    /// Which input-range characteristics to compute (Figure 5b).
    pub range_kind: RangeKind,
    /// Whether compensating additions/subtractions are detected and their
    /// influence suppressed (§5.3 / §8.3).
    pub detect_compensation: bool,
    /// Mantissa precision, in bits, of the shadow reals (the paper's
    /// `--precision`, default 1000 there; 256 here is ample for doubles).
    pub shadow_precision: u32,
    /// Step budget per machine run.
    pub step_limit: u64,
    /// Wall-clock deadline per machine run, in milliseconds; `0` (the
    /// default) disables it. Unlike the step budget the deadline is
    /// machine-load-dependent, so which run trips it is not reproducible —
    /// the fault-isolated drivers quarantine the input either way, but
    /// sweeps that must be bit-reproducible should prefer
    /// [`AnalysisConfig::step_limit`].
    pub deadline_millis: u64,
    /// Trace-memory budget per machine run, in interned expression nodes
    /// (leaves + interior nodes, see
    /// [`ExprInterner::len`](crate::trace::ExprInterner::len)); `0` (the
    /// default) disables it. A run whose recorded concrete expressions
    /// outgrow the budget faults with
    /// [`fpvm::MachineError::TraceBudgetExceeded`], which the fault-isolated
    /// drivers turn into a quarantine entry.
    pub trace_node_budget: usize,
    /// Number of analysis threads used by
    /// [`analyze_parallel`](crate::analysis::analyze_parallel): the input
    /// sweep is split into this many contiguous shards, analyzed
    /// independently, and merged deterministically. `0` means one thread per
    /// available core; `1` forces the serial path. The report is bit-identical
    /// for every setting.
    pub threads: usize,
    /// Lane width used by
    /// [`analyze_batched`](crate::batched::analyze_batched): how many inputs
    /// one batched tape pass executes in lockstep. Widths outside the
    /// engine's supported menu fall back to the nearest smaller supported
    /// width ([`crate::batched::SUPPORTED_BATCH_WIDTHS`]); `0` and `1` run
    /// single-lane batches. The report is bit-identical for every setting.
    pub batch_width: usize,
    /// Declared input region for tier 0 of the tiered analysis
    /// ([`analyze_tiered`](crate::tiered::analyze_tiered)): one `(lo, hi)`
    /// interval per program argument, in argument order. When set, the
    /// tiered driver runs the static error-dataflow pass
    /// ([`staticerr::analyze_program`]) over the compiled tape before any
    /// input executes and skips dynamic shadowing for statements it
    /// certifies stable — the report stays bit-identical as long as every
    /// swept input actually lies inside the declared region (the driver
    /// checks this per input and falls back to unpruned shadowing for
    /// out-of-region inputs). `None` (the default) disables tier 0
    /// everywhere; the serial and reference analyses never consult it.
    pub input_ranges: Option<Vec<(f64, f64)>>,
    /// Whether the `*_telemetry` driver entry points capture a
    /// [`telemetry::SweepTelemetry`] snapshot for the sweep. The default is
    /// [`telemetry::TelemetryMode::Off`], under which every recording site in
    /// the pipeline reduces to one relaxed atomic load and a predictable
    /// branch, and the `*_telemetry` drivers return a disabled snapshot. The
    /// report is bit-identical for every setting.
    pub telemetry: telemetry::TelemetryMode,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            local_error_threshold: 5.0,
            output_error_threshold: 5.0,
            max_expression_depth: 16,
            antiunify_equivalence_depth: 5,
            range_kind: RangeKind::SignSplit,
            detect_compensation: true,
            shadow_precision: 256,
            step_limit: 50_000_000,
            deadline_millis: 0,
            trace_node_budget: 0,
            threads: 0,
            batch_width: 8,
            input_ranges: None,
            telemetry: telemetry::TelemetryMode::Off,
        }
    }
}

impl AnalysisConfig {
    /// A configuration that mimics FpDebug: only the operation where error
    /// appears is reported (expression depth 1), no ranges, and no
    /// compensation detection — FpDebug has no analogue of §5.3, so a
    /// baseline comparison against it must not quietly keep Herbgrind's
    /// expert-trick suppression switched on.
    pub fn fpdebug_like() -> AnalysisConfig {
        AnalysisConfig {
            max_expression_depth: 1,
            range_kind: RangeKind::None,
            detect_compensation: false,
            ..AnalysisConfig::default()
        }
    }

    /// Returns the configuration with every cross-field invariant enforced:
    ///
    /// * `max_expression_depth >= 1` — depth 0 would record no expression at
    ///   all and break the depth-bounded trace machinery, which is why
    ///   [`AnalysisConfig::with_max_expression_depth`] clamps it; a struct
    ///   literal can bypass the builder, so every analysis entry point
    ///   normalizes instead of trusting the construction path.
    /// * `antiunify_equivalence_depth >= 1` — anti-unification must compare
    ///   at least the node itself.
    /// * `shadow_precision >= 53` — a shadow less precise than the doubles
    ///   it shadows cannot measure their error.
    ///
    /// Normalization is idempotent, and configurations built through
    /// [`Default`] or the builders are already normal.
    pub fn normalize(&self) -> AnalysisConfig {
        AnalysisConfig {
            max_expression_depth: self.max_expression_depth.max(1),
            antiunify_equivalence_depth: self.antiunify_equivalence_depth.max(1),
            shadow_precision: self.shadow_precision.max(53),
            ..self.clone()
        }
    }

    /// Sets the local-error threshold (builder style).
    pub fn with_local_error_threshold(mut self, bits: f64) -> Self {
        self.local_error_threshold = bits;
        self
    }

    /// Sets the maximum expression depth (builder style).
    pub fn with_max_expression_depth(mut self, depth: usize) -> Self {
        self.max_expression_depth = depth.max(1);
        self
    }

    /// Sets the range kind (builder style).
    pub fn with_range_kind(mut self, kind: RangeKind) -> Self {
        self.range_kind = kind;
        self
    }

    /// Enables or disables compensation detection (builder style).
    pub fn with_compensation_detection(mut self, enabled: bool) -> Self {
        self.detect_compensation = enabled;
        self
    }

    /// Sets the analysis thread count (builder style); `0` selects one
    /// thread per available core.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the batched-execution lane width (builder style); see
    /// [`AnalysisConfig::batch_width`].
    pub fn with_batch_width(mut self, width: usize) -> Self {
        self.batch_width = width;
        self
    }

    /// Declares the input region for static tier-0 certification (builder
    /// style); see [`AnalysisConfig::input_ranges`].
    pub fn with_input_ranges(mut self, ranges: Vec<(f64, f64)>) -> Self {
        self.input_ranges = Some(ranges);
        self
    }

    /// Sets the telemetry capture mode (builder style); see
    /// [`AnalysisConfig::telemetry`].
    pub fn with_telemetry(mut self, mode: telemetry::TelemetryMode) -> Self {
        self.telemetry = mode;
        self
    }

    /// Sets the per-run step budget (builder style).
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Sets the per-run wall-clock deadline in milliseconds (builder style);
    /// `0` disables it. See [`AnalysisConfig::deadline_millis`].
    pub fn with_deadline_millis(mut self, millis: u64) -> Self {
        self.deadline_millis = millis;
        self
    }

    /// Sets the per-run trace-memory budget in interned nodes (builder
    /// style); `0` disables it. See [`AnalysisConfig::trace_node_budget`].
    pub fn with_trace_node_budget(mut self, nodes: usize) -> Self {
        self.trace_node_budget = nodes;
        self
    }

    /// The thread count [`analyze_parallel`](crate::analysis::analyze_parallel)
    /// actually uses for a sweep of `input_count` inputs: the configured
    /// count (or the available parallelism when 0), never more than one
    /// thread per input.
    pub fn effective_threads(&self, input_count: usize) -> usize {
        let configured = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        };
        configured.clamp(1, input_count.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_configuration() {
        let c = AnalysisConfig::default();
        assert_eq!(c.antiunify_equivalence_depth, 5);
        assert_eq!(c.range_kind, RangeKind::SignSplit);
        assert!(c.detect_compensation);
        assert!(c.local_error_threshold > 0.0);
    }

    #[test]
    fn fpdebug_configuration_disables_expressions() {
        let c = AnalysisConfig::fpdebug_like();
        assert_eq!(c.max_expression_depth, 1);
        assert_eq!(c.range_kind, RangeKind::None);
    }

    #[test]
    fn builders_compose() {
        let c = AnalysisConfig::default()
            .with_local_error_threshold(16.0)
            .with_max_expression_depth(3)
            .with_range_kind(RangeKind::Single)
            .with_compensation_detection(false);
        assert_eq!(c.local_error_threshold, 16.0);
        assert_eq!(c.max_expression_depth, 3);
        assert_eq!(c.range_kind, RangeKind::Single);
        assert!(!c.detect_compensation);
    }

    #[test]
    fn depth_is_clamped_to_at_least_one() {
        let c = AnalysisConfig::default().with_max_expression_depth(0);
        assert_eq!(c.max_expression_depth, 1);
    }

    #[test]
    fn fpdebug_configuration_disables_compensation_detection() {
        // FpDebug has no compensation detection (§5.3 is Herbgrind's
        // contribution); the baseline configuration must not keep it on.
        assert!(!AnalysisConfig::fpdebug_like().detect_compensation);
    }

    #[test]
    fn normalize_enforces_invariants_bypassed_by_struct_literals() {
        // A struct literal can skip the builder's clamp; normalization at
        // the analysis entry points must restore every invariant.
        let raw = AnalysisConfig {
            max_expression_depth: 0,
            antiunify_equivalence_depth: 0,
            shadow_precision: 8,
            ..AnalysisConfig::default()
        };
        let normal = raw.normalize();
        assert_eq!(normal.max_expression_depth, 1);
        assert_eq!(normal.antiunify_equivalence_depth, 1);
        assert_eq!(normal.shadow_precision, 53);
        // Untouched fields pass through, and normalization is idempotent.
        assert_eq!(normal.batch_width, raw.batch_width);
        assert_eq!(normal.threads, raw.threads);
        let again = normal.normalize();
        assert_eq!(again.max_expression_depth, normal.max_expression_depth);
        assert_eq!(again.shadow_precision, normal.shadow_precision);
    }

    #[test]
    fn default_and_builder_configurations_are_already_normal() {
        for config in [
            AnalysisConfig::default(),
            AnalysisConfig::fpdebug_like(),
            AnalysisConfig::default().with_max_expression_depth(3),
        ] {
            let normal = config.normalize();
            assert_eq!(normal.max_expression_depth, config.max_expression_depth);
            assert_eq!(normal.shadow_precision, config.shadow_precision);
            assert_eq!(normal.detect_compensation, config.detect_compensation);
        }
    }
}

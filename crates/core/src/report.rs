//! Report generation: the user-facing output of the analysis.
//!
//! Reports follow the format shown in §3 of the paper: for each spot that
//! observed significant error, the location, how many evaluations were
//! erroneous, and the influencing erroneous expressions printed as FPCore
//! (with a `:pre` describing the observed input ranges and an example
//! problematic input). The FPCore fragments can be fed directly to an
//! accuracy-improvement tool (Herbie in the paper, `herbie-lite` here).

use crate::config::AnalysisConfig;
use crate::records::{OpRecord, SpotRecord};
use crate::symbolic::SymbolicExpr;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One candidate root cause attached to a spot.
#[derive(Clone, Debug)]
pub struct RootCauseReport {
    /// Statement index of the erroneous operation.
    pub pc: usize,
    /// Source location of the erroneous operation.
    pub location: String,
    /// The symbolic expression describing the computation.
    pub symbolic: SymbolicExpr,
    /// The expression as a complete `(FPCore ...)` form, with `:pre`.
    pub fpcore: String,
    /// The precondition text, if input ranges were tracked.
    pub precondition: Option<String>,
    /// Maximum local error observed at the operation, in bits.
    pub max_local_error: f64,
    /// Average local error over all executions, in bits.
    pub average_local_error: f64,
    /// Number of executions with local error above the threshold.
    pub erroneous_count: u64,
    /// Total number of executions.
    pub total_count: u64,
    /// Example variable values from a problematic execution, in the order of
    /// the FPCore argument list.
    pub example_input: Vec<f64>,
    /// Names of the FPCore arguments (parallel to `example_input`).
    pub variable_names: Vec<String>,
}

/// One spot (output, branch, or float→int conversion) in the report.
#[derive(Clone, Debug)]
pub struct SpotReport {
    /// Statement index of the spot.
    pub pc: usize,
    /// The report label for the kind of spot ("Output", "Compare",
    /// "Convert").
    pub kind_label: String,
    /// The spot's source location.
    pub location: String,
    /// Number of erroneous evaluations.
    pub erroneous: u64,
    /// Total number of evaluations.
    pub total: u64,
    /// Maximum error observed at the spot, in bits.
    pub max_error_bits: f64,
    /// Average error over all evaluations, in bits.
    pub average_error_bits: f64,
    /// Candidate root causes, most severe first.
    pub root_causes: Vec<RootCauseReport>,
}

/// The full analysis report.
#[derive(Clone, Debug)]
pub struct Report {
    /// The analyzed program's name.
    pub program_name: String,
    /// Spots with at least one erroneous evaluation, most erroneous first.
    pub spots: Vec<SpotReport>,
    /// Number of operations flagged as significantly erroneous at least once
    /// (the quantity plotted in Figure 5a).
    pub flagged_operations: usize,
    /// Total number of distinct operations observed.
    pub total_operations: usize,
    /// Number of runs (input points) observed.
    pub total_runs: u64,
    /// Compensating operations detected and suppressed (§8.3).
    pub compensations_detected: u64,
    /// Control-flow divergences between the float and shadow executions.
    pub branch_divergences: u64,
    /// Inputs the fault-isolated drivers ([`crate::quarantine`]) excluded
    /// from the sweep, in input order. Always empty for the plain drivers,
    /// which abort on the first failure instead; when non-empty, the rest of
    /// the report describes exactly the surviving inputs.
    pub quarantined: Vec<crate::quarantine::QuarantinedInput>,
}

impl Report {
    /// Builds a report from the analysis state (internal).
    ///
    /// `ops` and `spots` must be supplied in ascending-pc order (both the
    /// flat slot tables and the reference `BTreeMap`s iterate that way):
    /// spot ordering ties are broken by input order, so the pc order is part
    /// of the bit-identical report contract.
    pub(crate) fn build<'a>(
        program_name: &str,
        config: &AnalysisConfig,
        ops: impl Iterator<Item = (usize, &'a OpRecord)>,
        spots: impl Iterator<Item = (usize, &'a SpotRecord)>,
        total_runs: u64,
        compensations_detected: u64,
        branch_divergences: u64,
    ) -> Report {
        let ops: Vec<(usize, &OpRecord)> = ops.collect();
        let causes: BTreeMap<usize, RootCauseReport> = ops
            .iter()
            .filter(|(_, rec)| rec.erroneous > 0)
            .map(|&(pc, rec)| (pc, root_cause_from_record(pc, rec, config)))
            .collect();

        let mut spot_reports: Vec<SpotReport> = spots
            .filter(|(_, rec)| rec.erroneous > 0)
            .map(|(pc, rec)| {
                let mut root_causes: Vec<RootCauseReport> = rec
                    .influences
                    .iter()
                    .filter_map(|inf| causes.get(inf).cloned())
                    .collect();
                root_causes.sort_by(|a, b| {
                    b.max_local_error
                        .partial_cmp(&a.max_local_error)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                SpotReport {
                    pc,
                    kind_label: rec.kind.label().to_string(),
                    location: rec.location.to_string(),
                    erroneous: rec.erroneous,
                    total: rec.total,
                    max_error_bits: rec.max_error,
                    average_error_bits: rec.average_error(),
                    root_causes,
                }
            })
            .collect();
        spot_reports.sort_by(|a, b| {
            b.max_error_bits
                .partial_cmp(&a.max_error_bits)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.erroneous.cmp(&a.erroneous))
        });

        Report {
            program_name: program_name.to_string(),
            spots: spot_reports,
            flagged_operations: ops.iter().filter(|(_, r)| r.erroneous > 0).count(),
            total_operations: ops.len(),
            total_runs,
            compensations_detected,
            branch_divergences,
            quarantined: Vec::new(),
        }
    }

    /// True if any spot observed significant error.
    pub fn has_significant_error(&self) -> bool {
        self.spots.iter().any(|s| s.erroneous > 0)
    }

    /// All distinct root causes across spots (deduplicated by statement).
    pub fn all_root_causes(&self) -> Vec<&RootCauseReport> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for spot in &self.spots {
            for cause in &spot.root_causes {
                if seen.insert(cause.pc) {
                    out.push(cause);
                }
            }
        }
        out
    }

    /// The root-cause expressions as parsed FPCore benchmarks, ready to be
    /// handed to an accuracy-improvement tool.
    pub fn root_cause_cores(&self) -> Vec<fpcore::FPCore> {
        self.all_root_causes()
            .iter()
            .filter_map(|cause| fpcore::parse_core(&cause.fpcore).ok())
            .collect()
    }

    /// Renders the paper-style textual report.
    pub fn to_text(&self) -> String {
        self.to_text_with_stats(None)
    }

    /// Renders the paper-style textual report with an optional tier summary:
    /// sweeps that came through a tiered driver can pass the
    /// [`TierStats`](crate::tiered::TierStats) returned alongside the report
    /// so the summary footer shows the escalation rate; without stats the
    /// rate reads `n/a`. The footer is derived entirely from the rendered
    /// values — it adds no fields to [`Report`], so report bit-identity
    /// across drivers, thread counts, and batch widths is untouched.
    pub fn to_text_with_stats(&self, tiers: Option<&crate::tiered::TierStats>) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== Herbgrind report for {} ===", self.program_name);
        let _ = writeln!(
            out,
            "{} runs, {} of {} operations flagged, {} compensations suppressed",
            self.total_runs,
            self.flagged_operations,
            self.total_operations,
            self.compensations_detected
        );
        if !self.quarantined.is_empty() {
            let _ = writeln!(
                out,
                "{} input(s) quarantined; the report covers the survivors:",
                self.quarantined.len()
            );
            for q in &self.quarantined {
                let _ = writeln!(out, "  {q}");
            }
        }
        if self.spots.is_empty() {
            let _ = writeln!(out, "No significant error reached any spot.");
        }
        for spot in &self.spots {
            let _ = writeln!(out);
            let _ = writeln!(out, "{} @ {}", spot.kind_label, spot.location);
            let _ = writeln!(out, "{} incorrect values of {}", spot.erroneous, spot.total);
            let _ = writeln!(
                out,
                "max error {:.1} bits, average {:.1} bits",
                spot.max_error_bits, spot.average_error_bits
            );
            if spot.root_causes.is_empty() {
                let _ = writeln!(out, "No candidate root causes tracked to this spot.");
                continue;
            }
            let _ = writeln!(out, "Influenced by erroneous expressions:");
            for cause in &spot.root_causes {
                let _ = writeln!(out, "  {}", cause.fpcore);
                let _ = writeln!(
                    out,
                    "    at {} ({} erroneous of {} executions, max local error {:.1} bits)",
                    cause.location, cause.erroneous_count, cause.total_count, cause.max_local_error
                );
                if !cause.example_input.is_empty() {
                    let rendered: Vec<String> = cause
                        .example_input
                        .iter()
                        .map(|v| format!("{v:e}"))
                        .collect();
                    let _ = writeln!(
                        out,
                        "    Example problematic input: ({})",
                        rendered.join(", ")
                    );
                }
            }
        }
        let escalation = match tiers {
            Some(t) if t.total_inputs > 0 => format!(
                "{:.1}% ({}/{})",
                100.0 * t.escalated_inputs() as f64 / t.total_inputs as f64,
                t.escalated_inputs(),
                t.total_inputs
            ),
            Some(_) => "0.0% (0/0)".to_string(),
            None => "n/a".to_string(),
        };
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "summary: {} input(s) analyzed, {} quarantined, escalation rate {}",
            self.total_runs,
            self.quarantined.len(),
            escalation
        );
        out
    }
}

fn root_cause_from_record(
    pc: usize,
    record: &OpRecord,
    config: &AnalysisConfig,
) -> RootCauseReport {
    let symbolic = record
        .generalizer
        .current()
        .cloned()
        .unwrap_or(SymbolicExpr::Const(f64::NAN));
    let names = symbolic.default_names();
    let body = symbolic.to_fpcore(&names);
    let variable_names: Vec<String> = names.iter().map(|(_, n)| n.clone()).collect();

    // Build the precondition from the input characteristics: prefer the
    // problematic summaries (the inputs that actually caused error), fall
    // back to the totals.
    let mut clauses = Vec::new();
    let mut example_input = Vec::new();
    for (var, name) in &names {
        let summary = record
            .characteristics
            .problematic
            .get(var)
            .or_else(|| record.characteristics.total.get(var));
        if let Some(summary) = summary {
            clauses.extend(summary.precondition_clauses(name, config.range_kind));
            example_input.push(summary.example.unwrap_or(f64::NAN));
        } else {
            example_input.push(f64::NAN);
        }
    }
    let precondition = match clauses.len() {
        0 => None,
        1 => Some(clauses[0].clone()),
        _ => Some(format!("(and {})", clauses.join(" "))),
    };

    let args = variable_names.join(" ");
    let fpcore = match &precondition {
        Some(pre) => format!(
            "(FPCore ({args}) :pre {pre} {})",
            fpcore::expr_to_string(&body)
        ),
        None => format!("(FPCore ({args}) {})", fpcore::expr_to_string(&body)),
    };

    RootCauseReport {
        pc,
        location: record.location.to_string(),
        symbolic,
        fpcore,
        precondition,
        max_local_error: record.max_local_error,
        average_local_error: record.average_local_error(),
        erroneous_count: record.erroneous,
        total_count: record.total,
        example_input,
        variable_names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::config::AnalysisConfig;
    use fpcore::parse_core;
    use fpvm::compile_core;

    fn cancellation_report() -> Report {
        let core = parse_core("(FPCore (x y) (- (sqrt (+ (* x x) (* y y))) x))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        // Inputs near the x axis with tiny y reproduce the complex-plotter
        // cancellation from §3.
        let inputs: Vec<Vec<f64>> = (1..40)
            .map(|i| vec![0.25 / i as f64, 1e-9 / i as f64])
            .collect();
        analyze(&program, &inputs, &AnalysisConfig::default()).unwrap()
    }

    #[test]
    fn report_contains_the_plotter_expression() {
        let report = cancellation_report();
        assert!(report.has_significant_error());
        let causes = report.all_root_causes();
        assert!(!causes.is_empty());
        let top = causes[0];
        assert!(
            top.fpcore.contains("(- (sqrt (+ (* x x) (* y y))) x)"),
            "unexpected expression: {}",
            top.fpcore
        );
        // The report carries a precondition and an example problematic input.
        assert!(top.precondition.is_some());
        assert_eq!(top.example_input.len(), top.variable_names.len());
    }

    #[test]
    fn report_text_follows_paper_format() {
        let report = cancellation_report();
        let text = report.to_text();
        assert!(text.contains("incorrect values of"), "{text}");
        assert!(
            text.contains("Influenced by erroneous expressions:"),
            "{text}"
        );
        assert!(text.contains("Example problematic input:"), "{text}");
        assert!(text.contains("FPCore"), "{text}");
    }

    #[test]
    fn summary_footer_reports_inputs_quarantine_and_escalation() {
        let report = cancellation_report();
        let text = report.to_text();
        assert!(
            text.contains("summary: 39 input(s) analyzed, 0 quarantined, escalation rate n/a"),
            "{text}"
        );
        let stats = crate::tiered::TierStats {
            total_inputs: 39,
            certified_inputs: 34,
        };
        let with = report.to_text_with_stats(Some(&stats));
        assert!(with.contains("escalation rate 12.8% (5/39)"), "{with}");
    }

    #[test]
    fn root_cause_cores_parse_back() {
        let report = cancellation_report();
        let cores = report.root_cause_cores();
        assert!(!cores.is_empty());
        for core in &cores {
            assert!(!core.arguments.is_empty());
            assert!(core.body.operation_count() > 0);
        }
    }

    #[test]
    fn clean_program_reports_no_spots() {
        let core = parse_core("(FPCore (x) (* x 2))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let report = analyze(
            &program,
            &[vec![1.0], vec![2.5]],
            &AnalysisConfig::default(),
        )
        .unwrap();
        assert!(!report.has_significant_error());
        assert!(report.to_text().contains("No significant error"));
        assert_eq!(report.flagged_operations, 0);
    }
}

//! Symbolic expressions and anti-unification (§4.3, §6.1).
//!
//! A symbolic expression is the most-specific generalization of all the
//! concrete expressions observed at one operation: positions that held the
//! same value in every execution remain constants, positions that varied
//! become variables, and positions that always held *equivalent* subtrees
//! share a variable. Generalization uses Plotkin's anti-unification
//! algorithm, with the paper's approximation that subtree equivalence is
//! only computed to a bounded depth (§6.1, default 5).

use crate::trace::ConcreteExpr;
use shadowreal::RealOp;
use std::sync::Arc;

/// A symbolic expression: the generalization Herbgrind reports to the user.
#[derive(Clone, Debug, PartialEq)]
pub enum SymbolicExpr {
    /// A position that held this exact double in every observed execution.
    Const(f64),
    /// A position that varied; positions with the same index always held
    /// equivalent subtrees.
    Var(usize),
    /// An operation applied in every observed execution.
    Node {
        /// The operation.
        op: RealOp,
        /// The generalized operands.
        children: Vec<SymbolicExpr>,
    },
}

/// Where a variable of a freshly generalized expression came from, used to
/// carry input-characteristic summaries across incremental anti-unification
/// passes.
#[derive(Clone, Debug, PartialEq)]
pub enum VarOrigin {
    /// The position was already a variable with this index in the previous
    /// symbolic expression.
    FromVar(usize),
    /// The position was a constant with this value in all previous
    /// executions and has now been generalized.
    FromConst(f64),
}

/// One variable of the result of an anti-unification pass: its index, its
/// origin, and the value it took in the newly observed concrete expression.
#[derive(Clone, Debug, PartialEq)]
pub struct VarAssignment {
    /// Variable index in the new symbolic expression.
    pub var: usize,
    /// Origin in the previous symbolic expression.
    pub origin: VarOrigin,
    /// The value observed for this variable in the new concrete expression.
    pub value: f64,
}

impl SymbolicExpr {
    /// Builds the initial symbolic expression from a single concrete trace:
    /// operation structure is kept, leaves become constants.
    pub fn from_concrete(expr: &ConcreteExpr) -> SymbolicExpr {
        Self::from_concrete_bounded(expr, usize::MAX)
    }

    /// Like [`SymbolicExpr::from_concrete`], with the trace viewed through a
    /// depth budget: operation nodes deeper than `budget` levels become
    /// constants holding their observed value, exactly as if the trace had
    /// been truncated with [`ConcreteExpr::truncate_to_depth`] first — but
    /// without materializing the truncated trace.
    pub fn from_concrete_bounded(expr: &ConcreteExpr, budget: usize) -> SymbolicExpr {
        match expr {
            ConcreteExpr::Leaf { value } => SymbolicExpr::Const(*value),
            ConcreteExpr::Node { .. } if budget == 0 => SymbolicExpr::Const(expr.value()),
            ConcreteExpr::Node { op, children, .. } => SymbolicExpr::Node {
                op: *op,
                children: children
                    .iter()
                    .map(|c| Self::from_concrete_bounded(c, budget - 1))
                    .collect(),
            },
        }
    }

    /// The number of distinct variables.
    pub fn variable_count(&self) -> usize {
        let mut vars = Vec::new();
        self.collect_vars(&mut vars);
        vars.len()
    }

    fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            SymbolicExpr::Const(_) => {}
            SymbolicExpr::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            SymbolicExpr::Node { children, .. } => {
                for c in children {
                    c.collect_vars(out);
                }
            }
        }
    }

    /// All distinct variable indices, in first-occurrence order.
    pub fn variables(&self) -> Vec<usize> {
        let mut vars = Vec::new();
        self.collect_vars(&mut vars);
        vars
    }

    /// The number of operation nodes.
    pub fn operation_count(&self) -> usize {
        match self {
            SymbolicExpr::Const(_) | SymbolicExpr::Var(_) => 0,
            SymbolicExpr::Node { children, .. } => {
                1 + children.iter().map(|c| c.operation_count()).sum::<usize>()
            }
        }
    }

    /// The depth in operation nodes.
    pub fn depth(&self) -> usize {
        match self {
            SymbolicExpr::Const(_) | SymbolicExpr::Var(_) => 0,
            SymbolicExpr::Node { children, .. } => {
                1 + children.iter().map(|c| c.depth()).max().unwrap_or(0)
            }
        }
    }

    /// Structural equality bounded to `depth` levels; variables must have
    /// identical indices, constants identical bit patterns.
    fn equivalent_to_depth(&self, other: &SymbolicExpr, depth: usize) -> bool {
        if depth == 0 {
            return true;
        }
        match (self, other) {
            (SymbolicExpr::Const(a), SymbolicExpr::Const(b)) => a.to_bits() == b.to_bits(),
            (SymbolicExpr::Var(a), SymbolicExpr::Var(b)) => a == b,
            (
                SymbolicExpr::Node {
                    op: op_a,
                    children: ch_a,
                },
                SymbolicExpr::Node {
                    op: op_b,
                    children: ch_b,
                },
            ) => {
                op_a == op_b
                    && ch_a.len() == ch_b.len()
                    && ch_a
                        .iter()
                        .zip(ch_b)
                        .all(|(a, b)| a.equivalent_to_depth(b, depth - 1))
            }
            _ => false,
        }
    }

    /// Converts to an FPCore expression using the given variable names (one
    /// per variable index, in [`SymbolicExpr::variables`] order).
    pub fn to_fpcore(&self, names: &[(usize, String)]) -> fpcore::Expr {
        match self {
            SymbolicExpr::Const(c) => fpcore::Expr::Number(*c),
            SymbolicExpr::Var(v) => {
                let name = names
                    .iter()
                    .find(|(idx, _)| idx == v)
                    .map(|(_, n)| n.clone())
                    .unwrap_or_else(|| format!("v{v}"));
                fpcore::Expr::Var(name)
            }
            SymbolicExpr::Node { op, children } => {
                fpcore::Expr::Op(*op, children.iter().map(|c| c.to_fpcore(names)).collect())
            }
        }
    }

    /// Assigns conventional names (x, y, z, a, b, ...) to the variables.
    pub fn default_names(&self) -> Vec<(usize, String)> {
        const NAMES: [&str; 12] = ["x", "y", "z", "a", "b", "c", "d", "e1", "f", "g", "h", "k"];
        self.variables()
            .into_iter()
            .enumerate()
            .map(|(i, var)| {
                let name = NAMES
                    .get(i)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("v{i}"));
                (var, name)
            })
            .collect()
    }
}

/// Where one side of a merged variable came from, used to rewire input
/// characteristics when two shards' generalizations are combined
/// ([`Generalizer::merge`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MergeOrigin {
    /// The position was a variable with this index in the shard's symbolic
    /// expression; the merged variable inherits its summaries.
    Var(usize),
    /// The position held this constant in every one of the shard's
    /// executions.
    Const(f64),
    /// The position was a structural subtree with no single value (the two
    /// shards disagreed on operation structure); it contributes no input
    /// characteristics, mirroring how little the sequential analysis records
    /// when whole subtrees generalize away.
    Opaque,
    /// The shard never observed the operation (merging with an empty
    /// record); it contributes nothing.
    Absent,
}

/// One variable of a merged symbolic expression: its index in the merged
/// expression and its origin on each side.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MergeAssignment {
    /// Variable index in the merged symbolic expression.
    pub var: usize,
    /// Origin in the left (earlier-inputs) shard.
    pub left: MergeOrigin,
    /// Origin in the right (later-inputs) shard.
    pub right: MergeOrigin,
}

/// The incremental anti-unification state for one operation (one static
/// statement).
#[derive(Clone, Debug, Default)]
pub struct Generalizer {
    current: Option<SymbolicExpr>,
    equivalence_depth: usize,
    /// Reusable buffers for the observation walk (the pair table and the
    /// assignment list). Logically transient: the entry buffer is drained at
    /// the end of every observation (dropping its `Arc` clones), and the
    /// assignment buffer is overwritten at the start of the next one.
    /// Keeping the allocations saves two heap round-trips per observed
    /// operation on the analysis hot path; the buffers never influence the
    /// generalization state or its merges.
    scratch_entries: Vec<(SymbolicExpr, Arc<ConcreteExpr>, usize, usize)>,
    scratch_assignments: Vec<VarAssignment>,
}

struct PairTable<'a> {
    depth: usize,
    /// `(symbolic subtree, concrete subtree, concrete depth budget, var)`.
    /// The concrete side is kept raw together with the depth budget it was
    /// encountered under; comparisons view it through that budget lazily.
    /// The table lives only for one observation walk, so nothing is ever
    /// materialized from it — truncating the subtree here (per new pair,
    /// per operation) used to dominate loop-carried traces.
    entries: &'a mut Vec<(SymbolicExpr, Arc<ConcreteExpr>, usize, usize)>,
    assignments: &'a mut Vec<VarAssignment>,
}

impl PairTable<'_> {
    /// Finds (or allocates) the shared variable for a `(symbolic, concrete)`
    /// pair, with the concrete side viewed through `budget`: every
    /// comparison behaves exactly as if the concrete subtrees had been
    /// truncated to their budgets first, without building the truncations.
    fn variable_for(
        &mut self,
        sym: &SymbolicExpr,
        conc: &Arc<ConcreteExpr>,
        budget: usize,
    ) -> usize {
        for (s, c, c_budget, var) in self.entries.iter() {
            // Hash-consed traces make repeated subtraces pointer-identical;
            // `equivalent_views` short-circuits on identity before walking
            // the subtree.
            if s.equivalent_to_depth(sym, self.depth)
                && equivalent_views(c, *c_budget, conc, budget, self.depth)
            {
                return *var;
            }
        }
        let var = self.entries.len();
        self.entries
            .push((sym.clone(), Arc::clone(conc), budget, var));
        let origin = match sym {
            SymbolicExpr::Var(v) => VarOrigin::FromVar(*v),
            SymbolicExpr::Const(c) => VarOrigin::FromConst(*c),
            SymbolicExpr::Node { .. } => VarOrigin::FromConst(conc.value()),
        };
        self.assignments.push(VarAssignment {
            var,
            origin,
            value: conc.value(),
        });
        var
    }
}

/// Bounded structural equivalence between the budget-limited views of two
/// raw traces: equivalent to
/// `a.truncate_to_depth(budget_a).equivalent_to_depth(&b.truncate_to_depth(budget_b), depth)`
/// without building either truncation. Values compare by bit pattern, as in
/// [`ConcreteExpr::equivalent_to_depth`].
fn equivalent_views(
    a: &ConcreteExpr,
    budget_a: usize,
    b: &ConcreteExpr,
    budget_b: usize,
    depth: usize,
) -> bool {
    if depth == 0 {
        return true;
    }
    // Pointer identity proves view equivalence when the budgets agree or no
    // cut can occur within the compared depth.
    if std::ptr::eq(a, b) {
        let min_budget = budget_a.min(budget_b);
        if budget_a == budget_b || min_budget >= depth || a.depth() <= min_budget {
            return true;
        }
    }
    let a_is_leaf_view = budget_a == 0 || a.is_leaf();
    let b_is_leaf_view = budget_b == 0 || b.is_leaf();
    match (a_is_leaf_view, b_is_leaf_view) {
        (true, true) => a.value().to_bits() == b.value().to_bits(),
        (false, false) => match (a, b) {
            (
                ConcreteExpr::Node {
                    op: op_a,
                    children: ch_a,
                    ..
                },
                ConcreteExpr::Node {
                    op: op_b,
                    children: ch_b,
                    ..
                },
            ) => {
                op_a == op_b
                    && ch_a.len() == ch_b.len()
                    && ch_a.iter().zip(ch_b).all(|(ca, cb)| {
                        equivalent_views(ca, budget_a - 1, cb, budget_b - 1, depth - 1)
                    })
            }
            _ => unreachable!("non-leaf views are nodes"),
        },
        _ => false,
    }
}

impl Generalizer {
    /// Creates a generalizer using the given bounded equivalence depth.
    pub fn new(equivalence_depth: usize) -> Generalizer {
        Generalizer {
            current: None,
            equivalence_depth: equivalence_depth.max(1),
            scratch_entries: Vec::new(),
            scratch_assignments: Vec::new(),
        }
    }

    /// The current symbolic expression, if any concrete expression has been
    /// observed.
    pub fn current(&self) -> Option<&SymbolicExpr> {
        self.current.as_ref()
    }

    /// Merges another generalizer's state into this one, anti-unifying the
    /// two symbolic expressions, and returns the origin of every variable of
    /// the merged expression on both sides (used to rewire input
    /// characteristics during shard merging).
    ///
    /// `self` is the earlier-inputs side: variable numbering and variable
    /// sharing follow the same pre-order pair-discovery rule as
    /// [`Generalizer::observe`], so merging shard generalizations reproduces
    /// what a single sequential generalizer would have computed over the
    /// concatenated input sweep.
    pub fn merge(&mut self, other: &Generalizer) -> Vec<MergeAssignment> {
        match (self.current.take(), other.current.as_ref()) {
            (None, None) => Vec::new(),
            (None, Some(right)) => {
                self.current = Some(right.clone());
                right
                    .variables()
                    .into_iter()
                    .map(|var| MergeAssignment {
                        var,
                        left: MergeOrigin::Absent,
                        right: MergeOrigin::Var(var),
                    })
                    .collect()
            }
            (Some(left), None) => {
                let assignments = left
                    .variables()
                    .into_iter()
                    .map(|var| MergeAssignment {
                        var,
                        left: MergeOrigin::Var(var),
                        right: MergeOrigin::Absent,
                    })
                    .collect();
                self.current = Some(left);
                assignments
            }
            (Some(left), Some(right)) => {
                let mut table = SymPairTable {
                    depth: self.equivalence_depth,
                    entries: Vec::new(),
                    assignments: Vec::new(),
                };
                let merged = antiunify_sym(&left, right, &mut table);
                self.current = Some(merged);
                table.assignments
            }
        }
    }

    /// Folds a newly observed concrete expression into the generalization,
    /// returning the variable assignments for this observation (used to
    /// update input characteristics).
    pub fn observe(&mut self, concrete: &Arc<ConcreteExpr>) -> Vec<VarAssignment> {
        self.observe_bounded(concrete, usize::MAX)
    }

    /// Like [`Generalizer::observe`], with the concrete trace viewed through
    /// a depth budget: nodes deeper than `max_depth` operation levels read
    /// as constants holding their observed value, producing exactly the
    /// state and assignments that `observe(&concrete.truncate_to_depth(max_depth))`
    /// would — without materializing the truncated trace.
    ///
    /// This is what lets the analysis hot loop keep deeper-than-reported
    /// traces in shadow memory (truncating only when the storage bound is
    /// exceeded) while the per-operation record update stays an in-place,
    /// allocation-free walk: generalization mutates the current symbolic
    /// expression where it changes and touches nothing where it does not.
    pub fn observe_bounded(
        &mut self,
        concrete: &Arc<ConcreteExpr>,
        max_depth: usize,
    ) -> Vec<VarAssignment> {
        self.observe_bounded_scratch(concrete, max_depth).to_vec()
    }

    /// [`Generalizer::observe_bounded`] without the allocation: the
    /// assignments are written to an internal reusable buffer and returned
    /// as a slice. This is the form the per-operation record path uses.
    pub(crate) fn observe_bounded_scratch(
        &mut self,
        concrete: &Arc<ConcreteExpr>,
        max_depth: usize,
    ) -> &[VarAssignment] {
        self.scratch_assignments.clear();
        match self.current.as_mut() {
            None => {
                self.current = Some(SymbolicExpr::from_concrete_bounded(concrete, max_depth));
            }
            Some(previous) => {
                self.scratch_entries.clear();
                let mut table = PairTable {
                    depth: self.equivalence_depth,
                    entries: &mut self.scratch_entries,
                    assignments: &mut self.scratch_assignments,
                };
                antiunify_mut(previous, concrete, max_depth, &mut table);
                // Drain the pair table right away so its `Arc` clones do not
                // pin trace nodes between observations.
                self.scratch_entries.clear();
            }
        }
        &self.scratch_assignments
    }
}

/// The pair table for symbolic-vs-symbolic anti-unification (shard merging):
/// positions whose (left, right) subtree pairs are equivalent to the bounded
/// depth share a merged variable, mirroring [`PairTable`].
struct SymPairTable {
    depth: usize,
    entries: Vec<(SymbolicExpr, SymbolicExpr, usize)>,
    assignments: Vec<MergeAssignment>,
}

impl SymPairTable {
    fn variable_for(&mut self, left: &SymbolicExpr, right: &SymbolicExpr) -> usize {
        for (l, r, var) in &self.entries {
            if l.equivalent_to_depth(left, self.depth) && r.equivalent_to_depth(right, self.depth) {
                return *var;
            }
        }
        let var = self.entries.len();
        self.entries.push((left.clone(), right.clone(), var));
        let origin_of = |side: &SymbolicExpr| match side {
            SymbolicExpr::Var(v) => MergeOrigin::Var(*v),
            SymbolicExpr::Const(c) => MergeOrigin::Const(*c),
            SymbolicExpr::Node { .. } => MergeOrigin::Opaque,
        };
        self.assignments.push(MergeAssignment {
            var,
            left: origin_of(left),
            right: origin_of(right),
        });
        var
    }
}

fn antiunify_sym(
    left: &SymbolicExpr,
    right: &SymbolicExpr,
    table: &mut SymPairTable,
) -> SymbolicExpr {
    match (left, right) {
        (SymbolicExpr::Const(a), SymbolicExpr::Const(b)) if a.to_bits() == b.to_bits() => {
            SymbolicExpr::Const(*a)
        }
        (
            SymbolicExpr::Node {
                op: op_l,
                children: ch_l,
            },
            SymbolicExpr::Node {
                op: op_r,
                children: ch_r,
            },
        ) if op_l == op_r && ch_l.len() == ch_r.len() => SymbolicExpr::Node {
            op: *op_l,
            children: ch_l
                .iter()
                .zip(ch_r)
                .map(|(l, r)| antiunify_sym(l, r, table))
                .collect(),
        },
        _ => SymbolicExpr::Var(table.variable_for(left, right)),
    }
}

/// In-place anti-unification of the running generalization against a new
/// concrete trace viewed through `budget` levels.
///
/// Positions where the generalization already covers the observation —
/// matching constants, matching operation structure, and (the steady state)
/// existing variables — are left untouched, so a saturated generalization
/// observes a new trace with no allocation at all. Only positions that
/// genuinely generalize are rewritten. The result is bit-identical to the
/// rebuild-from-scratch formulation: every position is visited in the same
/// pre-order, pair discovery order (and therefore variable numbering) is
/// unchanged, and each table entry clones the symbolic subtree before it is
/// overwritten, exactly as the immutable walk cloned it out of the previous
/// expression.
fn antiunify_mut(
    sym: &mut SymbolicExpr,
    conc: &Arc<ConcreteExpr>,
    budget: usize,
    table: &mut PairTable,
) {
    let conc_is_leaf_view = budget == 0 || conc.is_leaf();
    match (&mut *sym, conc.as_ref()) {
        (SymbolicExpr::Const(c), _)
            if conc_is_leaf_view && c.to_bits() == conc.value().to_bits() => {}
        (
            SymbolicExpr::Node { op, children },
            ConcreteExpr::Node {
                op: conc_op,
                children: conc_children,
                ..
            },
        ) if budget > 0 && *op == *conc_op && children.len() == conc_children.len() => {
            for (s, c) in children.iter_mut().zip(conc_children) {
                antiunify_mut(s, c, budget - 1, table);
            }
        }
        _ => {
            let var = table.variable_for(sym, conc, budget);
            *sym = SymbolicExpr::Var(var);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm::SourceLoc;

    /// A deep chain trace: `x_k = x_{k-1} op_k leaf_k`, alternating ops.
    fn chain_trace(levels: usize, seed: f64) -> Arc<ConcreteExpr> {
        let mut trace = ConcreteExpr::leaf(seed);
        for k in 0..levels {
            let op = if k % 2 == 0 { RealOp::Add } else { RealOp::Mul };
            let leaf = ConcreteExpr::leaf(seed + k as f64);
            trace = ConcreteExpr::node(
                op,
                seed * (k + 1) as f64,
                vec![trace, leaf],
                k,
                SourceLoc::default(),
            );
        }
        trace
    }

    #[test]
    fn from_concrete_bounded_matches_truncate_then_convert() {
        for levels in [0usize, 1, 3, 9] {
            let trace = chain_trace(levels, 0.5);
            for budget in [0usize, 1, 2, 5, 100] {
                let bounded = SymbolicExpr::from_concrete_bounded(&trace, budget);
                let truncated = SymbolicExpr::from_concrete(&trace.truncate_to_depth(budget));
                assert_eq!(bounded, truncated, "levels={levels} budget={budget}");
            }
        }
    }

    #[test]
    fn observe_bounded_matches_observe_of_truncated_trace() {
        for budget in [1usize, 2, 4, 7] {
            let mut bounded = Generalizer::new(5);
            let mut truncating = Generalizer::new(5);
            for (i, seed) in [0.5f64, 0.5, 1.25, -3.0, 0.5, 8.5].iter().enumerate() {
                // Vary the chain length so the cut point moves around.
                let trace = chain_trace(3 + (i % 4) * 3, *seed);
                let a = bounded.observe_bounded(&trace, budget);
                let b = truncating.observe(&trace.truncate_to_depth(budget));
                assert_eq!(a, b, "assignments diverged at step {i}, budget {budget}");
                assert_eq!(
                    bounded.current(),
                    truncating.current(),
                    "generalizations diverged at step {i}, budget {budget}"
                );
            }
        }
    }

    #[test]
    fn bounded_view_equivalence_matches_materialized_truncation() {
        let a = chain_trace(8, 0.5);
        let b = chain_trace(11, 0.5);
        for (ba, bb) in [(0usize, 0usize), (2, 2), (3, 8), (8, 3), (20, 20)] {
            for depth in [1usize, 2, 5, 16] {
                let expect = a
                    .truncate_to_depth(ba)
                    .equivalent_to_depth(&b.truncate_to_depth(bb), depth);
                assert_eq!(
                    equivalent_views(&a, ba, &b, bb, depth),
                    expect,
                    "budgets ({ba},{bb}) depth {depth}"
                );
            }
        }
        // Pointer-identical raw traces with different budgets still compare
        // by view, not by identity.
        assert!(equivalent_views(&a, 3, &a, 3, 16));
        assert!(!equivalent_views(&a, 3, &a, 8, 16));
        assert_eq!(
            equivalent_views(&a, 3, &a, 8, 16),
            a.truncate_to_depth(3)
                .equivalent_to_depth(&a.truncate_to_depth(8), 16)
        );
    }

    fn dist_trace(x: f64, y: f64) -> Arc<ConcreteExpr> {
        // sqrt(x*x + y*y) - x
        let lx = ConcreteExpr::leaf(x);
        let ly = ConcreteExpr::leaf(y);
        let xx = ConcreteExpr::node(
            RealOp::Mul,
            x * x,
            vec![lx.clone(), lx.clone()],
            0,
            SourceLoc::default(),
        );
        let yy = ConcreteExpr::node(
            RealOp::Mul,
            y * y,
            vec![ly.clone(), ly],
            1,
            SourceLoc::default(),
        );
        let sum = ConcreteExpr::node(
            RealOp::Add,
            x * x + y * y,
            vec![xx, yy],
            2,
            SourceLoc::default(),
        );
        let root = ConcreteExpr::node(
            RealOp::Sqrt,
            (x * x + y * y).sqrt(),
            vec![sum],
            3,
            SourceLoc::default(),
        );
        ConcreteExpr::node(
            RealOp::Sub,
            (x * x + y * y).sqrt() - x,
            vec![root, lx],
            4,
            SourceLoc::default(),
        )
    }

    #[test]
    fn single_observation_keeps_constants() {
        let mut g = Generalizer::new(5);
        let assignments = g.observe(&dist_trace(3.0, 4.0));
        assert!(assignments.is_empty());
        let sym = g.current().unwrap();
        assert_eq!(sym.variable_count(), 0);
        assert_eq!(sym.operation_count(), 5);
    }

    #[test]
    fn repeated_positions_share_a_variable() {
        let mut g = Generalizer::new(5);
        g.observe(&dist_trace(3.0, 4.0));
        let assignments = g.observe(&dist_trace(5.0, 12.0));
        let sym = g.current().unwrap();
        // The three occurrences of x generalize to one variable and the two
        // occurrences of y to another: exactly 2 variables.
        assert_eq!(sym.variable_count(), 2, "{sym:?}");
        // Assignments report the new instance's values for both variables.
        let mut values: Vec<f64> = assignments.iter().map(|a| a.value).collect();
        values.sort_by(f64::total_cmp);
        values.dedup();
        assert_eq!(values, vec![5.0, 12.0]);
        // The structure is preserved.
        assert_eq!(sym.operation_count(), 5);
        assert_eq!(sym.depth(), 4);
    }

    #[test]
    fn further_observations_preserve_variables() {
        let mut g = Generalizer::new(5);
        g.observe(&dist_trace(3.0, 4.0));
        g.observe(&dist_trace(5.0, 12.0));
        let assignments = g.observe(&dist_trace(8.0, 15.0));
        let sym = g.current().unwrap();
        assert_eq!(sym.variable_count(), 2);
        // Origins now refer to existing variables, not constants.
        assert!(assignments
            .iter()
            .all(|a| matches!(a.origin, VarOrigin::FromVar(_))));
    }

    #[test]
    fn constant_positions_stay_constant() {
        // exp(x) - 1: the 1 is the same in every execution.
        let make = |x: f64| {
            let lx = ConcreteExpr::leaf(x);
            let one = ConcreteExpr::leaf(1.0);
            let e = ConcreteExpr::node(RealOp::Exp, x.exp(), vec![lx], 0, SourceLoc::default());
            ConcreteExpr::node(
                RealOp::Sub,
                x.exp() - 1.0,
                vec![e, one],
                1,
                SourceLoc::default(),
            )
        };
        let mut g = Generalizer::new(5);
        g.observe(&make(0.5));
        g.observe(&make(2.0));
        let sym = g.current().unwrap();
        assert_eq!(sym.variable_count(), 1);
        // Find the constant 1.0 in the tree.
        let fp = sym.to_fpcore(&sym.default_names());
        let printed = fpcore::expr_to_string(&fp);
        assert!(printed.contains('1'), "{printed}");
        assert_eq!(printed, "(- (exp x) 1)");
    }

    #[test]
    fn different_operations_generalize_to_a_variable() {
        let a = ConcreteExpr::node(
            RealOp::Sqrt,
            2.0,
            vec![ConcreteExpr::leaf(4.0)],
            0,
            SourceLoc::default(),
        );
        let b = ConcreteExpr::node(
            RealOp::Exp,
            1.0,
            vec![ConcreteExpr::leaf(0.0)],
            0,
            SourceLoc::default(),
        );
        let top_a = ConcreteExpr::node(
            RealOp::Add,
            3.0,
            vec![a, ConcreteExpr::leaf(1.0)],
            1,
            SourceLoc::default(),
        );
        let top_b = ConcreteExpr::node(
            RealOp::Add,
            2.0,
            vec![b, ConcreteExpr::leaf(1.0)],
            1,
            SourceLoc::default(),
        );
        let mut g = Generalizer::new(5);
        g.observe(&top_a);
        g.observe(&top_b);
        let sym = g.current().unwrap();
        assert_eq!(sym.variable_count(), 1);
        assert_eq!(sym.operation_count(), 1); // only the + survives
    }

    #[test]
    fn bounded_depth_merges_distant_differences() {
        // Two positions whose generalization-triggering mismatch sits above
        // deep subtrees that differ only several levels down: shallow
        // equivalence cannot tell the positions apart (one shared variable),
        // deep equivalence can (two variables). This is the soundness /
        // precision trade-off of §6.1.
        let subtree = |op: RealOp, leaf: f64| {
            let l = ConcreteExpr::leaf(leaf);
            let s = ConcreteExpr::node(RealOp::Sqrt, leaf.sqrt(), vec![l], 0, SourceLoc::default());
            let one = ConcreteExpr::leaf(1.0);
            ConcreteExpr::node(op, leaf.sqrt(), vec![s, one], 1, SourceLoc::default())
        };
        let obs = |op: RealOp| {
            ConcreteExpr::node(
                RealOp::Add,
                0.0,
                vec![subtree(op, 4.0), subtree(op, 9.0)],
                2,
                SourceLoc::default(),
            )
        };
        // First observation uses Mul at the two positions, second uses Div,
        // so both positions become variables; whether they *share* a
        // variable depends on the equivalence depth.
        let with_depth = |depth: usize| {
            let mut g = Generalizer::new(depth);
            g.observe(&obs(RealOp::Mul));
            g.observe(&obs(RealOp::Div));
            g.current().unwrap().variable_count()
        };
        assert_eq!(with_depth(1), 1);
        assert_eq!(with_depth(5), 2);
    }

    #[test]
    fn merging_generalizers_matches_sequential_observation() {
        // Observing [t1, t2] sequentially must equal observing t1 and t2 in
        // separate generalizers and merging them.
        let mut sequential = Generalizer::new(5);
        sequential.observe(&dist_trace(3.0, 4.0));
        sequential.observe(&dist_trace(5.0, 12.0));

        let mut left = Generalizer::new(5);
        left.observe(&dist_trace(3.0, 4.0));
        let mut right = Generalizer::new(5);
        right.observe(&dist_trace(5.0, 12.0));
        let assignments = left.merge(&right);

        assert_eq!(left.current(), sequential.current());
        // Both shards held constants at the generalized positions, and the
        // origins carry those constants for characteristics rewiring.
        assert_eq!(assignments.len(), 2);
        assert!(assignments
            .iter()
            .all(|a| matches!(a.left, MergeOrigin::Const(_))
                && matches!(a.right, MergeOrigin::Const(_))));
    }

    #[test]
    fn merging_with_an_empty_generalizer_is_identity() {
        let mut populated = Generalizer::new(5);
        populated.observe(&dist_trace(3.0, 4.0));
        populated.observe(&dist_trace(5.0, 12.0));
        let before = populated.current().cloned();

        let mut left = populated.clone();
        let assignments = left.merge(&Generalizer::new(5));
        assert_eq!(left.current().cloned(), before);
        assert!(assignments
            .iter()
            .all(|a| matches!(a.right, MergeOrigin::Absent)));

        let mut empty = Generalizer::new(5);
        let assignments = empty.merge(&populated);
        assert_eq!(empty.current().cloned(), before);
        assert!(assignments
            .iter()
            .all(|a| matches!(a.left, MergeOrigin::Absent)));
    }

    #[test]
    fn merging_preserves_shared_variables_across_shards() {
        // Four observations split two ways: variables that repeat within the
        // expression (x appears three times) stay shared after the merge.
        let mut left = Generalizer::new(5);
        left.observe(&dist_trace(3.0, 4.0));
        left.observe(&dist_trace(5.0, 12.0));
        let mut right = Generalizer::new(5);
        right.observe(&dist_trace(8.0, 15.0));
        right.observe(&dist_trace(7.0, 24.0));
        let assignments = left.merge(&right);
        let merged = left.current().unwrap();
        assert_eq!(merged.variable_count(), 2);
        assert_eq!(merged.operation_count(), 5);
        assert!(assignments.iter().all(|a| matches!(
            (a.left, a.right),
            (MergeOrigin::Var(_), MergeOrigin::Var(_))
        )));
    }

    #[test]
    fn fpcore_conversion_uses_conventional_names() {
        let mut g = Generalizer::new(5);
        g.observe(&dist_trace(3.0, 4.0));
        g.observe(&dist_trace(6.0, 8.0));
        let sym = g.current().unwrap();
        let printed = fpcore::expr_to_string(&sym.to_fpcore(&sym.default_names()));
        assert_eq!(printed, "(- (sqrt (+ (* x x) (* y y))) x)");
    }
}

//! The batched analysis mode: Herbgrind over the lane-parallel execution
//! engine ([`fpvm::batch`]).
//!
//! # Architecture
//!
//! [`analyze_batched`] splits the input sweep into `W` contiguous chunks and
//! assigns chunk `l` to lane `l` — the same contiguous-chunk sharding
//! [`analyze_parallel`](crate::analysis::analyze_parallel) uses across
//! threads, but across SIMD lanes of one [`BatchMachine`] pass. Each lane
//! owns a full per-lane [`Herbgrind`] shard (its own shadow slot table,
//! record slots, and trace interner, indexed by lane), and the
//! [`BatchHerbgrind`] tracer fans every per-group callback out to the lanes
//! of the group, so **each lane shard observes exactly the serial callback
//! sequence for its inputs**. Folding the lane shards in lane order is then
//! the same contiguous in-input-order merge the parallel engine performs —
//! which is why the batched report is **bit-identical** to serial
//! [`analyze`](crate::analysis::analyze) for every batch width, divergent
//! control flow included (the engine replays each lane's serial statement
//! sequence regardless of grouping).
//!
//! What the batch amortizes or vectorizes per op group: tape dispatch, the
//! tracer callback, the client `f64` arithmetic, the **exact shadow
//! evaluation** (one [`BatchReal::apply_lanes`] call per group — the
//! vectorized [`shadowreal::dd_batch`] kernels for the `DoubleDouble`
//! shadow), the float side of the local-error computation, and the
//! **group-shared record layer**: operand gathering fused with lazy
//! shadowing (one slot probe per operand per lane), trace nodes interned
//! once per convergent group through a group-level
//! [`ExprInterner::node_group`] (structural key hashed once, lanes split
//! only on value mismatch, value-identical lanes sharing one node), and
//! record updates folded through [`OpRecord::record_bounded_group`] /
//! [`crate::inputs::InputCharacteristics::apply_assignments_group`] in
//! lane order. The anti-unification and characteristics *state* stays
//! per-lane (that is what makes the lane-order merge bit-identical);
//! [`DdErrorProbe`] shows the engine's throughput with all record
//! bookkeeping stripped to FpDebug-style per-statement error counters.
//!
//! Threads compose with lanes: `config.threads` shards the sweep exactly as
//! the parallel engine does, every shard runs the batched engine on a
//! cloned machine sharing one decoded tape, and shard merges happen in
//! input order.

// Quarantine semantics depend on faults being *typed*: a stray `.unwrap()`
// in driver code turns a recoverable per-input fault into a sweep-wide
// panic, so bare unwraps are denied here (tests opt back in locally).
#![deny(clippy::unwrap_used)]

use crate::analysis::{balanced_chunks, Herbgrind};
use crate::config::AnalysisConfig;
use crate::records::{GroupObservation, OpRecord};
use crate::report::Report;
use crate::trace::{ConcreteExpr, ExprInterner, LaneNode, TraceChildren};
use fpcore::CmpOp;
use fpvm::batch::{full_mask, lane_active, lane_indices, BatchMemory, BatchTracer, LaneMask};
use fpvm::{Addr, Machine, MachineError, Program, Tracer, Value, MAX_ARITY, MAX_LANES};
use shadowreal::{apply_f64_lanes, bits_error, BatchReal, BigFloat, DdLanes, RealOp};
use std::sync::Arc;

/// The lane widths the batched engine is compiled for. Requested widths
/// ([`AnalysisConfig::batch_width`]) outside this menu fall back to the
/// nearest smaller entry; the report is bit-identical either way, so the
/// width only affects throughput. The menu covers the power-of-two widths
/// the vectorized kernels target plus a prime width (13) so non-uniform
/// remainder chunking stays exercised.
pub const SUPPORTED_BATCH_WIDTHS: &[usize] = &[1, 2, 4, 8, 13, 16];

/// The width the engine will actually run for a requested
/// [`AnalysisConfig::batch_width`]: the largest supported width that does
/// not exceed the request (`0` and `1` both select single-lane batches).
pub fn effective_batch_width(requested: usize) -> usize {
    let requested = requested.max(1);
    SUPPORTED_BATCH_WIDTHS
        .iter()
        .copied()
        .filter(|&w| w <= requested)
        .max()
        .unwrap_or(1)
}

/// The Herbgrind analysis attached to a lane batch: one full per-lane
/// analysis shard per lane, driven by per-group callbacks.
///
/// Most events simply fan out to the owning lane's serial [`Tracer`]
/// methods. Compute events run the whole group through the **group-shared
/// record layer**: one lane-vectorized exact evaluation
/// ([`BatchReal::apply_lanes`]), one group-level trace-interning call
/// ([`ExprInterner::node_group`] — the structural key is hashed once per
/// group and split per lane only on value mismatch, so lanes with identical
/// observations share one trace node), and one group-level record fold
/// ([`OpRecord::record_bounded_group`] /
/// [`crate::inputs::InputCharacteristics::apply_assignments_group`]) in
/// lane order. Constant loads intern one leaf per group. All sharing is
/// structural-identity-preserving, so every lane shard still holds exactly
/// the serial per-input state and the lane-order merge stays bit-identical
/// to serial [`analyze`](crate::analysis::analyze).
#[derive(Debug)]
pub struct BatchHerbgrind<R: BatchReal, const W: usize> {
    lanes: Vec<Herbgrind<R>>,
    config: AnalysisConfig,
    /// The group-level trace interner: one hash-consing table shared by all
    /// lane shards, so a convergent group's nodes are interned with one
    /// structural hash and value-identical lanes share allocations (which in
    /// turn keeps operand pointer sets identical across lanes, feeding the
    /// next group's shared-structure fast path and the anti-unification
    /// pointer-identity short-circuits). Per-run state like shadow memory:
    /// cleared at the start of every batch pass.
    interner: ExprInterner,
    /// Reusable per-group output buffer for [`ExprInterner::node_group`].
    node_scratch: Vec<Option<Arc<ConcreteExpr>>>,
    /// Per-lane analysis-side faults (group trace-budget exhaustion,
    /// injected failures) awaiting delivery through the batch scheduler's
    /// per-group [`BatchTracer::lane_fault`] poll, which masks the lane out.
    lane_faults: [Option<MachineError>; MAX_LANES],
    /// Per-lane fault-injection context for the current pass: each lane's
    /// sweep-global input index, plus the pipeline stage.
    #[cfg(feature = "fault-injection")]
    inject_lanes: [Option<usize>; MAX_LANES],
    #[cfg(feature = "fault-injection")]
    inject_stage: crate::faultinject::InjectStage,
    /// Tier-0 static prune mask, shared by all lanes (pruning is a
    /// per-statement decision, identical across lanes). Installed only by
    /// the tiered driver for input groups inside the declared static region.
    prune: Option<Arc<staticerr::PruneMask>>,
}

impl<R: BatchReal, const W: usize> BatchHerbgrind<R, W> {
    /// One analysis shard per lane. The configuration is normalized
    /// ([`AnalysisConfig::normalize`]) like the serial analysis does, so the
    /// group-level record layer and the lane shards agree on every clamped
    /// parameter.
    pub fn new(config: &AnalysisConfig) -> Self {
        let config = config.normalize();
        BatchHerbgrind {
            lanes: (0..W).map(|_| Herbgrind::new(config.clone())).collect(),
            config,
            interner: ExprInterner::new(),
            node_scratch: Vec::new(),
            lane_faults: std::array::from_fn(|_| None),
            #[cfg(feature = "fault-injection")]
            inject_lanes: [None; MAX_LANES],
            #[cfg(feature = "fault-injection")]
            inject_stage: crate::faultinject::InjectStage::Batched,
            prune: None,
        }
    }

    /// Installs (or clears) the tier-0 static prune mask consulted by every
    /// compute group, forwarding it to the lane shards so a lane driven
    /// through its serial [`Tracer`] interface prunes identically. The
    /// caller guarantees every input in the pass lies inside the mask's
    /// declared region.
    pub(crate) fn set_prune_mask(&mut self, mask: Option<Arc<staticerr::PruneMask>>) {
        for lane in &mut self.lanes {
            lane.set_prune_mask(mask.clone());
        }
        self.prune = mask;
    }

    /// Arms deterministic fault injection for the next pass: `lanes[l]` is
    /// lane `l`'s sweep-global input index (`None` for idle lanes), `stage`
    /// the pipeline stage executing the pass.
    #[cfg(feature = "fault-injection")]
    pub(crate) fn arm_lane_injection(
        &mut self,
        lanes: [Option<usize>; MAX_LANES],
        stage: crate::faultinject::InjectStage,
    ) {
        self.inject_lanes = lanes;
        self.inject_stage = stage;
    }

    /// Folds the lane shards in lane order — with contiguous-chunk lane
    /// assignment this is the in-input-order merge whose result is
    /// bit-identical to one serial sweep. The merged analysis can be merged
    /// further (thread shards) before reporting.
    pub fn into_merged(self) -> Herbgrind<R> {
        let mut lanes = self.lanes.into_iter();
        let mut merged = lanes.next().expect("at least one lane");
        for lane in lanes {
            merged.merge(lane);
        }
        merged
    }

    /// Folds the lane shards ([`BatchHerbgrind::into_merged`]) and builds
    /// the report.
    pub fn into_report(self) -> Report {
        self.into_merged().report()
    }
}

impl<R: BatchReal, const W: usize> BatchTracer<W> for BatchHerbgrind<R, W> {
    fn on_start(&mut self, program: &Program, lane_inputs: &[Option<&[f64]>; W], mask: LaneMask) {
        // The group interner is per-pass state, like the serial shard
        // interners are per-run state: a pass is one run per lane.
        self.interner.clear();
        self.lane_faults = std::array::from_fn(|_| None);
        for l in lane_indices(mask) {
            if let Some(args) = lane_inputs[l] {
                self.lanes[l].on_start(program, args);
            }
        }
    }

    fn on_compute(
        &mut self,
        pc: usize,
        op: RealOp,
        dest: Addr,
        args: &[Addr],
        arg_values: &[[f64; W]],
        results: &[f64; W],
        mask: LaneMask,
    ) {
        // Deterministic fault injection, consulted per lane before any
        // analysis work: an injected panic unwinds the whole pass (like a
        // real crashing shadow op would); budget kinds latch into the lane's
        // fault slot, delivered through the scheduler's per-group poll.
        #[cfg(feature = "fault-injection")]
        for l in lane_indices(mask) {
            if let Some(ix) = self.inject_lanes[l] {
                use crate::faultinject::{self, InjectKind, InjectStage};
                match faultinject::query(ix, pc, self.inject_stage) {
                    Some(InjectKind::Panic) => {
                        panic!("injected analysis panic: input {ix}, pc {pc}, lane {l}")
                    }
                    Some(InjectKind::TierEscalation)
                        if self.inject_stage == InjectStage::TieredBigFloat =>
                    {
                        panic!("injected tier-escalation failure: input {ix}, pc {pc}, lane {l}")
                    }
                    Some(InjectKind::StepBudget) => {
                        self.lane_faults[l] = Some(MachineError::StepBudgetExceeded {
                            limit: self.config.step_limit,
                        });
                    }
                    Some(InjectKind::Deadline) => {
                        self.lane_faults[l] = Some(MachineError::DeadlineExceeded {
                            millis: self.config.deadline_millis.max(1),
                        });
                    }
                    Some(InjectKind::TraceBudget) => {
                        self.lane_faults[l] = Some(MachineError::TraceBudgetExceeded {
                            limit: self.config.trace_node_budget.max(1),
                        });
                    }
                    // NaN poisoning targets the serial stages; lane groups
                    // share exact evaluations, so it is a no-op here.
                    Some(InjectKind::NanPoison) | Some(InjectKind::TierEscalation) | None => {}
                }
            }
        }
        // Tier 0: a statically certified statement skips the group's shadow
        // work entirely — each active lane records the op's existence and
        // invalidates the destination shadow, exactly like the serial
        // analysis does for pruned statements (after the injection consult,
        // so injected faults still fire at pruned sites).
        if self.prune.as_ref().is_some_and(|m| m.is_pruned(pc)) {
            telemetry::TIER0_PRUNED_EXECUTIONS.add(u64::from(mask.count_ones()));
            for l in lane_indices(mask) {
                self.lanes[l].on_pruned_compute(pc, op, dest);
            }
            return;
        }
        crate::analysis::shadow_ops_counter::<R>().add(u64::from(mask.count_ones()));
        let n = args.len();
        let BatchHerbgrind {
            lanes,
            config,
            interner,
            node_scratch,
            lane_faults,
            ..
        } = self;
        // One lane-vectorized exact evaluation for the whole group, with the
        // lazy leaf-shadow creation (through the group interner, so lanes
        // observing the same value share one leaf) fused into the operand
        // gather that feeds both the exact kernel and the trace layer: each
        // lane's slot is probed once per operand. The operand shadows stay
        // borrowed in the lane slot tables while the kernel runs;
        // `BatchReal`'s bit-identity contract guarantees each lane gets
        // exactly the serial `apply_ref` result.
        let max_depth = config.max_expression_depth;
        let store_bound = max_depth.saturating_mul(4);
        let intern_bound = crate::analysis::intern_depth_bound(config);
        let mut exact_results: [Option<R>; W] = std::array::from_fn(|_| None);
        let mut local_errs = [0.0f64; W];
        // Placeholder for inactive child-ref slots: the cached process-wide
        // zero leaf (no allocation), never read for lanes outside the mask.
        let zero_leaf = ConcreteExpr::leaf(0.0);
        {
            let mut child_refs = [[&zero_leaf; MAX_ARITY]; W];
            let mut gathered: [[Option<&R>; W]; MAX_ARITY] = [[None; W]; MAX_ARITY];
            let mut location: Option<&Arc<fpvm::SourceLoc>> = None;
            for (l, lane) in lanes.iter_mut().enumerate() {
                if !lane_active(mask, l) {
                    continue;
                }
                for (i, &addr) in args.iter().enumerate() {
                    lane.ensure_shadow_in(interner, addr, arg_values[i][l]);
                }
                // Downgrade this lane's borrow and read the freshly ensured
                // operands in the same pass.
                let lane: &Herbgrind<R> = lane;
                for (i, &addr) in args.iter().enumerate() {
                    let (real, expr) = lane.shadow_parts(addr).expect("operand shadow");
                    gathered[i][l] = Some(real);
                    child_refs[l][i] = expr;
                }
                if location.is_none() {
                    location = Some(lane.location(pc));
                }
            }
            let location = location.expect("non-empty group");
            R::apply_lanes(op, &gathered[..n], mask, &mut exact_results);

            // Local error (Figure 4), with the float re-evaluation of the
            // rounded exact operands done lane-vectorized.
            let mut rounded = [[0.0f64; W]; MAX_ARITY];
            for (rounded_lanes, arg) in rounded.iter_mut().zip(&gathered[..n]) {
                for l in lane_indices(mask) {
                    rounded_lanes[l] = arg[l].expect("operand shadow").to_f64();
                }
            }
            let float_results = apply_f64_lanes(op, &rounded[..n]);
            for l in lane_indices(mask) {
                let exact = exact_results[l].as_ref().expect("lane result");
                local_errs[l] = bits_error(float_results[l], exact.to_f64());
            }

            // Group-shared trace construction: intern the whole group's
            // result nodes in one call — one structural hash for lanes whose
            // operands are pointer-shared, one node per distinct
            // observation. Deep traces take the serial paths (allocated
            // directly past the interning depth bound, truncated past the 4D
            // storage bound), deduplicated within the group so lanes with
            // identical observations still share one node.
            let mut deep_mask: LaneMask = 0;
            let mut depths = [0usize; W];
            let mut reqs: [Option<LaneNode>; W] = std::array::from_fn(|_| None);
            for l in lane_indices(mask) {
                let depth = 1 + child_refs[l][..n]
                    .iter()
                    .map(|c| c.depth())
                    .max()
                    .unwrap_or(0);
                depths[l] = depth;
                if depth <= intern_bound {
                    reqs[l] = Some(LaneNode {
                        value: results[l],
                        children: &child_refs[l][..n],
                    });
                } else {
                    deep_mask |= 1 << l;
                }
            }
            interner.node_group(op, pc, location, &reqs, node_scratch);
            for l in lane_indices(deep_mask) {
                let shared = lane_indices(deep_mask).take_while(|&p| p < l).find(|&p| {
                    results[p].to_bits() == results[l].to_bits()
                        && child_refs[p][..n]
                            .iter()
                            .zip(&child_refs[l][..n])
                            .all(|(a, b)| Arc::ptr_eq(a, b))
                });
                node_scratch[l] = match shared {
                    Some(p) => node_scratch[p].clone(),
                    None => {
                        let node = ConcreteExpr::node(
                            op,
                            results[l],
                            TraceChildren::from_refs(&child_refs[l][..n]),
                            pc,
                            location.clone(),
                        );
                        Some(if depths[l] <= store_bound {
                            node
                        } else {
                            node.truncate_to_depth(max_depth)
                        })
                    }
                };
            }
        }

        // Per-lane shadow tails (influences, compensation, destination
        // write), then one group-level record fold — both in lane order.
        let mut lane_args = [0.0f64; MAX_ARITY];
        let mut recorded: [Option<bool>; W] = [None; W];
        for l in lane_indices(mask) {
            for (slot, lane_values) in lane_args.iter_mut().zip(arg_values) {
                *slot = lane_values[l];
            }
            let exact = exact_results[l].take().expect("lane result");
            let node = Arc::clone(node_scratch[l].as_ref().expect("lane node"));
            recorded[l] = lanes[l].compute_shadow_tail(
                pc,
                op,
                dest,
                args,
                &lane_args[..n],
                results[l],
                local_errs[l],
                exact,
                node,
            );
        }
        OpRecord::record_bounded_group(
            lanes.iter_mut().enumerate().filter_map(|(l, lane)| {
                let erroneous = recorded[l]?;
                let node = node_scratch[l].as_ref().expect("lane node");
                Some((
                    lane.op_record_entry(pc, op),
                    GroupObservation {
                        node,
                        local_error: local_errs[l],
                        erroneous,
                    },
                ))
            }),
            max_depth,
            config,
        );

        // Trace-memory budget on the group interner — the batched
        // counterpart of the serial per-run check. The table is shared by
        // every lane, so attribution is collective: all active lanes fault,
        // and the isolated driver's serial retry (per-input interner)
        // decides which inputs genuinely exceed the budget alone.
        let budget = config.trace_node_budget;
        if budget != 0 && interner.len() >= budget {
            for l in lane_indices(mask) {
                if lane_faults[l].is_none() {
                    lane_faults[l] = Some(MachineError::TraceBudgetExceeded { limit: budget });
                }
            }
        }
    }

    fn on_const_f(&mut self, _pc: usize, dest: Addr, value: f64, mask: LaneMask) {
        // One interned leaf per group, shared by every lane's shadow — the
        // serial `on_const_f` effect with the allocation amortized.
        let BatchHerbgrind {
            lanes, interner, ..
        } = self;
        let leaf = interner.leaf(value);
        for l in lane_indices(mask) {
            lanes[l].set_const_shadow(dest, value, Arc::clone(&leaf));
        }
    }

    fn on_const_i(&mut self, pc: usize, dest: Addr, value: i64, mask: LaneMask) {
        for l in lane_indices(mask) {
            self.lanes[l].on_const_i(pc, dest, value);
        }
    }

    fn on_copy(&mut self, pc: usize, dest: Addr, src: Addr, values: &[Value; W], mask: LaneMask) {
        for l in lane_indices(mask) {
            self.lanes[l].on_copy(pc, dest, src, values[l]);
        }
    }

    fn on_cast_to_int(
        &mut self,
        pc: usize,
        dest: Addr,
        src: Addr,
        values: &[f64; W],
        results: &[i64; W],
        mask: LaneMask,
    ) {
        for l in lane_indices(mask) {
            self.lanes[l].on_cast_to_int(pc, dest, src, values[l], results[l]);
        }
    }

    fn on_branch(
        &mut self,
        pc: usize,
        cmp: CmpOp,
        lhs: Addr,
        rhs: Addr,
        lhs_values: &[Value; W],
        rhs_values: &[Value; W],
        taken: LaneMask,
        mask: LaneMask,
    ) {
        for l in lane_indices(mask) {
            self.lanes[l].on_branch(
                pc,
                cmp,
                lhs,
                rhs,
                lhs_values[l],
                rhs_values[l],
                lane_active(taken, l),
            );
        }
    }

    fn on_output(&mut self, pc: usize, src: Addr, values: &[f64; W], mask: LaneMask) {
        for l in lane_indices(mask) {
            self.lanes[l].on_output(pc, src, values[l]);
        }
    }

    fn any_fault(&self) -> bool {
        self.lane_faults.iter().any(Option::is_some)
    }

    fn lane_fault(&mut self, lane: usize) -> Option<MachineError> {
        self.lane_faults[lane].take()
    }
}

/// Runs one batched sweep at compile-time width `W`: contiguous lane
/// chunks, one batch pass per chunk position, per-lane failure isolation
/// with the earliest-input error surfaced — the lane-level mirror of the
/// thread-sharded driver.
pub(crate) fn batched_sweep<R: BatchReal, const W: usize>(
    machine: &Machine<'_>,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
    prune: Option<&Arc<staticerr::PruneMask>>,
) -> Result<Herbgrind<R>, MachineError> {
    let lane_count = W.min(inputs.len()).max(1);
    // Balanced contiguous partition: chunk lengths differ by at most one, so
    // a sweep of at least W inputs keeps every lane busy (ceil-division
    // chunking used to produce fewer chunks than lanes — 9 inputs at W=8 ran
    // only 5 lanes). Chunks are contiguous in input order, so the lane-order
    // merge below is unchanged and reports stay bit-identical.
    let chunks = balanced_chunks(inputs, lane_count);
    let positions = chunks.first().map_or(0, |chunk| chunk.len());
    let batch = machine.batched::<W>();
    let mut tracer = BatchHerbgrind::<R, W>::new(config);
    tracer.set_prune_mask(prune.map(Arc::clone));
    let mut memory = BatchMemory::new();
    let mut failures: [Option<MachineError>; W] = std::array::from_fn(|_| None);
    for position in 0..positions {
        let mut lane_inputs: [Option<&[f64]>; W] = [None; W];
        let mut any = false;
        for (l, chunk) in chunks.iter().enumerate() {
            if failures[l].is_none() {
                if let Some(input) = chunk.get(position) {
                    lane_inputs[l] = Some(input.as_slice());
                    any = true;
                }
            }
        }
        if !any {
            break;
        }
        let outcome = batch.run_batch(&lane_inputs, &mut tracer, &mut memory);
        for (failure, error) in failures.iter_mut().zip(&outcome.errors) {
            if failure.is_none() {
                if let Some(error) = error {
                    // A failed lane stops consuming its chunk — the serial
                    // sweep would have stopped at this input; later chunks
                    // (like later parallel shards) still run.
                    *failure = Some(error.clone());
                }
            }
        }
    }
    if let Some(error) = failures.iter().flatten().next() {
        return Err(error.clone());
    }
    Ok(tracer.into_merged())
}

/// [`batched_sweep`] in fault-collecting form, for the fault-isolated
/// drivers: instead of surfacing one error, every failed run is reported as
/// `(sweep-global input index, error)` — `index_base` is the global index of
/// `inputs[0]` — and the analysis state is returned only when the sweep was
/// fault-free (a faulted lane's partial records make the accumulated state
/// unusable; the isolated engine rebuilds without the faulted inputs). A
/// failed lane stops consuming its chunk, so its tail is reported to the
/// caller as unprocessed rather than failed; panics unwind to the caller.
#[allow(clippy::type_complexity)]
pub(crate) fn batched_sweep_collect<R: BatchReal, const W: usize>(
    machine: &Machine<'_>,
    inputs: &[Vec<f64>],
    index_base: usize,
    config: &AnalysisConfig,
    #[cfg(feature = "fault-injection")] stage: crate::faultinject::InjectStage,
) -> (Option<Herbgrind<R>>, Vec<(usize, MachineError)>) {
    let lane_count = W.min(inputs.len()).max(1);
    let chunks = balanced_chunks(inputs, lane_count);
    let positions = chunks.first().map_or(0, |chunk| chunk.len());
    let mut offsets = Vec::with_capacity(chunks.len());
    let mut start = 0;
    for chunk in &chunks {
        offsets.push(start);
        start += chunk.len();
    }
    let batch = machine.batched::<W>();
    let mut tracer = BatchHerbgrind::<R, W>::new(config);
    let mut memory = BatchMemory::new();
    let mut failed = [false; W];
    let mut faults: Vec<(usize, MachineError)> = Vec::new();
    for position in 0..positions {
        let mut lane_inputs: [Option<&[f64]>; W] = [None; W];
        let mut any = false;
        #[cfg(feature = "fault-injection")]
        let mut lane_indices_global = [None; MAX_LANES];
        for (l, chunk) in chunks.iter().enumerate() {
            if !failed[l] {
                if let Some(input) = chunk.get(position) {
                    lane_inputs[l] = Some(input.as_slice());
                    any = true;
                    #[cfg(feature = "fault-injection")]
                    {
                        lane_indices_global[l] = Some(index_base + offsets[l] + position);
                    }
                }
            }
        }
        if !any {
            break;
        }
        #[cfg(feature = "fault-injection")]
        tracer.arm_lane_injection(lane_indices_global, stage);
        let outcome = batch.run_batch(&lane_inputs, &mut tracer, &mut memory);
        for (l, error) in outcome.errors.iter().enumerate() {
            if !failed[l] {
                if let Some(error) = error {
                    failed[l] = true;
                    faults.push((index_base + offsets[l] + position, error.clone()));
                }
            }
        }
    }
    if faults.is_empty() {
        (Some(tracer.into_merged()), faults)
    } else {
        faults.sort_by_key(|(index, _)| *index);
        (None, faults)
    }
}

/// [`batched_sweep_collect`] dispatched to the compiled batch width.
#[allow(clippy::type_complexity)]
pub(crate) fn dispatch_sweep_collect<R: BatchReal>(
    machine: &Machine<'_>,
    width: usize,
    inputs: &[Vec<f64>],
    index_base: usize,
    config: &AnalysisConfig,
    #[cfg(feature = "fault-injection")] stage: crate::faultinject::InjectStage,
) -> (Option<Herbgrind<R>>, Vec<(usize, MachineError)>) {
    macro_rules! go {
        ($w:literal) => {
            batched_sweep_collect::<R, $w>(
                machine,
                inputs,
                index_base,
                config,
                #[cfg(feature = "fault-injection")]
                stage,
            )
        };
    }
    match width {
        2 => go!(2),
        4 => go!(4),
        8 => go!(8),
        13 => go!(13),
        16 => go!(16),
        _ => go!(1),
    }
}

/// Dispatches a sweep to the compiled batch width. `prune` is the tier-0
/// static prune mask — `None` everywhere except the tiered driver's
/// in-region certified groups.
pub(crate) fn dispatch_sweep<R: BatchReal>(
    machine: &Machine<'_>,
    width: usize,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
    prune: Option<&Arc<staticerr::PruneMask>>,
) -> Result<Herbgrind<R>, MachineError> {
    match width {
        2 => batched_sweep::<R, 2>(machine, inputs, config, prune),
        4 => batched_sweep::<R, 4>(machine, inputs, config, prune),
        8 => batched_sweep::<R, 8>(machine, inputs, config, prune),
        13 => batched_sweep::<R, 13>(machine, inputs, config, prune),
        16 => batched_sweep::<R, 16>(machine, inputs, config, prune),
        _ => batched_sweep::<R, 1>(machine, inputs, config, prune),
    }
}

/// Runs a program under the batched analysis for every input vector, using
/// the default [`BigFloat`] shadow reals.
///
/// Interchangeable with [`analyze`](crate::analysis::analyze) and
/// [`analyze_parallel`](crate::analysis::analyze_parallel): the report is
/// bit-identical for every batch width and thread count, enforced by the
/// batch-equivalence test suite.
///
/// # Errors
///
/// Propagates [`MachineError`] like the serial driver: the error of the
/// earliest failing input is returned.
pub fn analyze_batched(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<Report, MachineError> {
    analyze_batched_with_shadow::<BigFloat>(program, inputs, config)
}

/// Runs the batched analysis with an explicit shadow-real type. The
/// `DoubleDouble` shadow evaluates through the lane-vectorized
/// [`shadowreal::dd_batch`] kernels; `f64` through vectorized lane loops;
/// [`BigFloat`] falls back to scalar kernels per lane while still amortizing
/// decode and dispatch.
///
/// # Errors
///
/// Propagates [`MachineError`] from the underlying interpreter; when several
/// inputs fail, the earliest failing input's error is returned.
pub fn analyze_batched_with_shadow<R: BatchReal + Send>(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<Report, MachineError> {
    let width = effective_batch_width(config.batch_width);
    let threads = config.effective_threads(inputs.len());
    // One decode for the whole sweep: thread shards clone the machine and
    // share its tape.
    let shared = Machine::new(program)
        .with_step_limit(config.step_limit)
        .with_deadline_millis(config.deadline_millis);
    if threads <= 1 || inputs.len() <= 1 {
        return dispatch_sweep::<R>(&shared, width, inputs, config, None).map(|a| a.report());
    }
    // Balanced thread shards, like `analyze_parallel`: every thread gets a
    // chunk whenever there are at least `threads` inputs.
    let shards: Vec<Result<Herbgrind<R>, MachineError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = balanced_chunks(inputs, threads)
            .into_iter()
            .map(|chunk| {
                let machine = shared.clone();
                scope.spawn(move || dispatch_sweep::<R>(&machine, width, chunk, config, None))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("batched analysis shard panicked"))
            .collect()
    });
    // Merge thread shards in shard (= input) order, exactly as the parallel
    // engine does; the earliest shard's error is the serial sweep's error.
    let mut merged: Option<Herbgrind<R>> = None;
    for shard in shards {
        let shard = shard?;
        match &mut merged {
            Some(accumulated) => accumulated.merge(shard),
            None => merged = Some(shard),
        }
    }
    let merged = merged.unwrap_or_else(|| Herbgrind::<R>::new(config.clone()));
    Ok(merged.report())
}

/// [`shadowreal::ordinal`] without the NaN branch: identical for every
/// non-NaN input (the probe patches NaN lanes through the exact
/// [`shadowreal::ulps_between`] afterwards), and a straight-line
/// bit-manipulation the compiler can keep in vector registers.
#[inline]
fn branchless_ordinal(x: f64) -> i64 {
    let bits = x.to_bits();
    let magnitude = (bits & 0x7fff_ffff_ffff_ffff) as i64;
    if bits >> 63 == 0 {
        magnitude
    } else {
        -magnitude
    }
}

/// Per-statement summary produced by [`DdErrorProbe`]: FpDebug-style
/// local-error counters without traces, influences, or symbolic records.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LocalErrorSummary {
    /// Program counters with at least one execution, ascending.
    pub statements: Vec<LocalErrorRow>,
    /// Total compute operations observed across all lanes and runs.
    pub total_ops: u64,
}

/// One statement's local-error counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LocalErrorRow {
    /// The statement (program counter).
    pub pc: usize,
    /// Executions across all lanes and runs.
    pub executions: u64,
    /// Executions whose local error exceeded the probe threshold.
    pub erroneous: u64,
    /// Maximum local error observed, in bits (`log2(1 + ulps)`).
    pub max_error_bits: f64,
}

/// A fully lane-vectorized local-error probe over the `DoubleDouble` shadow.
///
/// This is the batched engine with the per-lane record machinery stripped
/// away: shadow memory is a struct-of-arrays [`DdLanes`] plane per address
/// (so operand reads need no gather at all), every compute evaluates the
/// exact operation through the vectorized [`shadowreal::dd_batch`] kernels,
/// and local error is tallied in integer ulps per statement — the
/// `FpDebug`-style detection layer of the analysis at memory-bandwidth
/// speed. It answers "where is local error introduced, how often, how big"
/// without root-cause traces, which is exactly the per-op work the full
/// analysis adds on top.
#[derive(Debug)]
pub struct DdErrorProbe<const W: usize> {
    shadows: Vec<DdLanes<W>>,
    executions: Vec<u64>,
    erroneous: Vec<u64>,
    max_ulps: Vec<u64>,
    threshold_ulps: u64,
    /// True for negative thresholds, which every execution exceeds — `ulps >
    /// threshold_ulps` cannot express "including zero ulps" in a `u64`.
    flag_all: bool,
    total_ops: u64,
}

/// The bits-of-error the analysis computes for a ulps distance: exactly
/// [`shadowreal::bits_error`]'s arithmetic, expressed over the integer
/// distance the probe counts in.
fn bits_of_ulps(ulps: u64) -> f64 {
    if ulps == u64::MAX {
        return shadowreal::MAX_ERROR_BITS;
    }
    (((ulps as f64) + 1.0).log2()).min(shadowreal::MAX_ERROR_BITS)
}

impl<const W: usize> DdErrorProbe<W> {
    /// A probe flagging statements whose local error exceeds
    /// `threshold_bits` — by the *same decision* the full analysis makes
    /// (`bits_error(float, exact) > T`), converted to an integer ulps bound.
    ///
    /// In exact arithmetic `bits > T ⟺ ulps > 2^T − 1`, but the analysis
    /// computes bits as the **rounded** `log2(ulps + 1)`, so the naive
    /// conversion misclassifies ulps counts near the boundary (for example
    /// `ulps = 2^60` at `T = 60`: `log2` rounds to exactly `60.0`, which
    /// does not exceed the threshold, while `2^60 > 2^60 − 1` does). The
    /// bound is therefore taken directly from the analysis's own formula:
    /// the largest ulps count whose rounded bits do not exceed the
    /// threshold, located by binary search over the monotone `log2` (with a
    /// local fix-up so faithful-but-not-correct rounding cannot shift the
    /// boundary). Thresholds at or above [`shadowreal::MAX_ERROR_BITS`] (or
    /// NaN) flag nothing, exactly like the analysis, whose bits are clamped
    /// to that maximum; negative thresholds flag every execution.
    pub fn new(threshold_bits: f64) -> Self {
        let exceeds = |ulps: u64| bits_of_ulps(ulps) > threshold_bits;
        let threshold_ulps =
            if threshold_bits.is_nan() || threshold_bits >= shadowreal::MAX_ERROR_BITS {
                // T >= 64 bits, or NaN: bits are clamped to 64, so nothing can
                // exceed the threshold — not even the saturated NaN distance.
                u64::MAX
            } else if threshold_bits < 0.0 {
                // Every execution exceeds a negative threshold; `ulps >= 0 > -1`
                // has no u64 encoding, so flag through the zero-included path.
                0
            } else {
                // Largest `u` with bits(u) <= T; erroneous ⟺ ulps > u.
                let (mut lo, mut hi) = (0u64, u64::MAX - 1);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2 + 1;
                    if exceeds(mid) {
                        hi = mid - 1;
                    } else {
                        lo = mid;
                    }
                }
                while lo < u64::MAX - 1 && !exceeds(lo + 1) {
                    lo += 1;
                }
                while lo > 0 && exceeds(lo) {
                    lo -= 1;
                }
                lo
            };
        let flag_all = threshold_bits < 0.0;
        DdErrorProbe {
            shadows: Vec::new(),
            executions: Vec::new(),
            erroneous: Vec::new(),
            max_ulps: Vec::new(),
            threshold_ulps,
            flag_all,
            total_ops: 0,
        }
    }

    /// Folds the counters into an ordered summary.
    pub fn summary(&self) -> LocalErrorSummary {
        let statements = self
            .executions
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(pc, &executions)| LocalErrorRow {
                pc,
                executions,
                erroneous: self.erroneous[pc],
                max_error_bits: bits_of_ulps(self.max_ulps[pc]),
            })
            .collect();
        LocalErrorSummary {
            statements,
            total_ops: self.total_ops,
        }
    }

    /// The shadow plane of `addr`, growing the table on the cold path —
    /// mirroring the full analysis's `put_shadow`, which stays correct for
    /// statements addressing beyond the space announced at `on_start`
    /// instead of panicking.
    #[inline]
    fn plane(&mut self, addr: Addr) -> &mut DdLanes<W> {
        if addr >= self.shadows.len() {
            self.shadows.resize(addr + 1, DdLanes::zero());
        }
        &mut self.shadows[addr]
    }

    /// Read form of [`DdErrorProbe::plane`]: unwritten or out-of-range
    /// addresses read as the zero plane, exactly what a freshly grown slot
    /// holds.
    #[inline]
    fn plane_or_zero(&self, addr: Addr) -> DdLanes<W> {
        self.shadows
            .get(addr)
            .copied()
            .unwrap_or_else(DdLanes::zero)
    }

    /// Counter slots for `pc`, growing the tables on the cold path like the
    /// analysis's pc-indexed record slots.
    #[inline]
    fn ensure_pc(&mut self, pc: usize) {
        if pc >= self.executions.len() {
            self.executions.resize(pc + 1, 0);
            self.erroneous.resize(pc + 1, 0);
            self.max_ulps.resize(pc + 1, 0);
        }
    }
}

impl<const W: usize> BatchTracer<W> for DdErrorProbe<W> {
    fn on_start(&mut self, program: &Program, lane_inputs: &[Option<&[f64]>; W], mask: LaneMask) {
        self.shadows.clear();
        self.shadows.resize(program.num_addrs, DdLanes::zero());
        if self.executions.len() < program.len() {
            self.executions.resize(program.len(), 0);
            self.erroneous.resize(program.len(), 0);
            self.max_ulps.resize(program.len(), 0);
        }
        for l in lane_indices(mask) {
            if let Some(args) = lane_inputs[l] {
                for (&addr, &value) in program.arg_addrs.iter().zip(args) {
                    self.shadows[addr].hi[l] = value;
                    self.shadows[addr].lo[l] = 0.0;
                }
            }
        }
    }

    fn on_compute(
        &mut self,
        pc: usize,
        op: RealOp,
        dest: Addr,
        args: &[Addr],
        _arg_values: &[[f64; W]],
        _results: &[f64; W],
        mask: LaneMask,
    ) {
        // Gather-free operand reads: the shadow planes are already lane
        // arrays. Reads beyond the announced address space see the zero
        // plane (what a grown slot would hold), instead of panicking.
        let mut operands = [DdLanes::zero(); MAX_ARITY];
        for (lanes, &addr) in operands.iter_mut().zip(args) {
            *lanes = self.plane_or_zero(addr);
        }
        let exact = shadowreal::dd_batch::apply(op, &operands[..args.len()]);
        // Local error: the rounded exact operands are the hi planes, so the
        // float re-evaluation is one vectorized lane call.
        let mut rounded = [[0.0f64; W]; MAX_ARITY];
        for (lanes, operand) in rounded.iter_mut().zip(&operands[..args.len()]) {
            *lanes = operand.hi;
        }
        let float_results = apply_f64_lanes(op, &rounded[..args.len()]);
        // Branch-free ulps distance per lane, with the (rare) NaN lanes
        // patched afterwards so every lane agrees exactly with
        // `shadowreal::ulps_between`. NaN detection is itself branch-free:
        // `x * 0.0` is NaN iff `x` is non-finite, and a non-finite shadow or
        // float result is exactly the case the slow path must arbitrate.
        let mut ulps = [0u64; W];
        let mut nonfinite_probe = 0.0f64;
        for l in 0..W {
            ulps[l] =
                branchless_ordinal(float_results[l]).abs_diff(branchless_ordinal(exact.hi[l]));
            nonfinite_probe += float_results[l] * 0.0 + exact.hi[l] * 0.0;
        }
        if nonfinite_probe.is_nan() {
            for l in 0..W {
                ulps[l] = shadowreal::ulps_between(float_results[l], exact.hi[l]);
            }
        }
        let mut erroneous = 0u64;
        self.ensure_pc(pc);
        let mut max_ulps = self.max_ulps[pc];
        let full = full_mask(W);
        if mask == full {
            for &u in &ulps {
                erroneous += u64::from(self.flag_all || u > self.threshold_ulps);
                max_ulps = max_ulps.max(u);
            }
        } else {
            for (l, &lane_ulps) in ulps.iter().enumerate() {
                let active = lane_active(mask, l);
                let u = if active { lane_ulps } else { 0 };
                erroneous += u64::from(active && (self.flag_all || u > self.threshold_ulps));
                max_ulps = max_ulps.max(u);
            }
        }
        let active = mask.count_ones() as u64;
        self.executions[pc] += active;
        self.erroneous[pc] += erroneous;
        self.max_ulps[pc] = max_ulps;
        self.total_ops += active;
        // Store of the destination plane, whole-group when convergent.
        let dest_plane = self.plane(dest);
        if mask == full {
            *dest_plane = exact;
        } else {
            for l in 0..W {
                if lane_active(mask, l) {
                    dest_plane.hi[l] = exact.hi[l];
                    dest_plane.lo[l] = exact.lo[l];
                }
            }
        }
    }

    fn on_const_f(&mut self, _pc: usize, dest: Addr, value: f64, mask: LaneMask) {
        let plane = self.plane(dest);
        for l in 0..W {
            if lane_active(mask, l) {
                plane.hi[l] = value;
                plane.lo[l] = 0.0;
            }
        }
    }

    fn on_const_i(&mut self, _pc: usize, dest: Addr, value: i64, mask: LaneMask) {
        let plane = self.plane(dest);
        for l in 0..W {
            if lane_active(mask, l) {
                plane.hi[l] = value as f64;
                plane.lo[l] = 0.0;
            }
        }
    }

    fn on_copy(&mut self, _pc: usize, dest: Addr, src: Addr, _values: &[Value; W], mask: LaneMask) {
        let src_plane = self.plane_or_zero(src);
        let dest_plane = self.plane(dest);
        for l in 0..W {
            if lane_active(mask, l) {
                dest_plane.hi[l] = src_plane.hi[l];
                dest_plane.lo[l] = src_plane.lo[l];
            }
        }
    }

    fn on_cast_to_int(
        &mut self,
        _pc: usize,
        dest: Addr,
        _src: Addr,
        _values: &[f64; W],
        results: &[i64; W],
        mask: LaneMask,
    ) {
        let plane = self.plane(dest);
        for (l, &result) in results.iter().enumerate() {
            if lane_active(mask, l) {
                plane.hi[l] = result as f64;
                plane.lo[l] = 0.0;
            }
        }
    }
}

/// Sweeps `inputs` through the [`DdErrorProbe`] at compile-time width `W`
/// with the same balanced contiguous lane chunking as [`analyze_batched`],
/// and returns the per-statement local-error summary.
///
/// # Errors
///
/// Propagates [`MachineError`] with the same semantics as the analysis
/// drivers: when several inputs fail, the error of the **earliest input** is
/// returned. Under contiguous lane assignment that is the first failure of
/// the lowest failed lane, so a failure stops its own lane *and* every lane
/// above it (their errors can never be the earliest, and any failure
/// discards the summary); only lanes below keep running, since one of them
/// failing would supersede the error.
pub fn probe_local_error<const W: usize>(
    program: &Program,
    inputs: &[Vec<f64>],
    threshold_bits: f64,
) -> Result<LocalErrorSummary, MachineError> {
    let machine = Machine::new(program);
    let batch = machine.batched::<W>();
    let lane_count = W.min(inputs.len()).max(1);
    let chunks = balanced_chunks(inputs, lane_count);
    let positions = chunks.first().map_or(0, |chunk| chunk.len());
    let mut probe = DdErrorProbe::<W>::new(threshold_bits);
    let mut memory = BatchMemory::new();
    let mut failures: [Option<MachineError>; W] = std::array::from_fn(|_| None);
    let mut lowest_failed = W;
    for position in 0..positions {
        let mut lane_inputs: [Option<&[f64]>; W] = [None; W];
        let mut any = false;
        for (l, chunk) in chunks.iter().enumerate().take(lowest_failed) {
            if failures[l].is_none() {
                if let Some(input) = chunk.get(position) {
                    lane_inputs[l] = Some(input.as_slice());
                    any = true;
                }
            }
        }
        if !any {
            break;
        }
        let outcome = batch.run_batch(&lane_inputs, &mut probe, &mut memory);
        for (l, (failure, error)) in failures.iter_mut().zip(&outcome.errors).enumerate() {
            if failure.is_none() {
                if let Some(error) = error {
                    *failure = Some(error.clone());
                    lowest_failed = lowest_failed.min(l);
                }
            }
        }
    }
    if let Some(error) = failures.iter().flatten().next() {
        return Err(error.clone());
    }
    Ok(probe.summary())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test assertions may unwrap freely

    use super::*;
    use crate::analysis::analyze;
    use fpcore::parse_core;
    use fpvm::compile_core;

    fn program(src: &str) -> Program {
        compile_core(&parse_core(src).unwrap(), Default::default()).unwrap()
    }

    #[test]
    fn width_fallback_picks_nearest_smaller_supported() {
        assert_eq!(effective_batch_width(0), 1);
        assert_eq!(effective_batch_width(1), 1);
        assert_eq!(effective_batch_width(3), 2);
        assert_eq!(effective_batch_width(8), 8);
        assert_eq!(effective_batch_width(12), 8);
        assert_eq!(effective_batch_width(13), 13);
        assert_eq!(effective_batch_width(100), 16);
    }

    #[test]
    fn batched_default_width_matches_serial() {
        let p = program("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))");
        let inputs: Vec<Vec<f64>> = (0..30).map(|i| vec![10f64.powi(i)]).collect();
        let config = AnalysisConfig::default().with_threads(1);
        let serial = analyze(&p, &inputs, &config).unwrap();
        let batched = analyze_batched(&p, &inputs, &config).unwrap();
        assert_eq!(format!("{serial:?}"), format!("{batched:?}"));
    }

    #[test]
    fn batched_threads_compose_with_lanes() {
        let p = program("(FPCore (x y) (- (sqrt (+ (* x x) (* y y))) x))");
        let inputs: Vec<Vec<f64>> = (1..40)
            .map(|i| vec![0.25 / i as f64, 1e-9 / i as f64])
            .collect();
        let serial = analyze(&p, &inputs, &AnalysisConfig::default().with_threads(1)).unwrap();
        let config = AnalysisConfig::default()
            .with_threads(3)
            .with_batch_width(4);
        let batched = analyze_batched(&p, &inputs, &config).unwrap();
        assert_eq!(format!("{serial:?}"), format!("{batched:?}"));
    }

    #[test]
    fn batched_surfaces_the_earliest_input_error() {
        let p = program("(FPCore (n) (while (< t n) ((t 0 (+ t 0.125)) (c 0 (+ c 1))) c))");
        let inputs: Vec<Vec<f64>> = (1..=8).map(|n| vec![n as f64 * 100.0]).collect();
        let config = AnalysisConfig {
            step_limit: 10,
            ..AnalysisConfig::default().with_threads(1)
        };
        let serial_err = analyze(&p, &inputs, &config).unwrap_err();
        let batched_err = analyze_batched(&p, &inputs, &config).unwrap_err();
        assert_eq!(format!("{serial_err:?}"), format!("{batched_err:?}"));
    }

    #[test]
    fn w_plus_one_inputs_exercise_every_lane() {
        // The chunking regression: 9 inputs at W=8 used to make ceil-division
        // chunks of [2, 2, 2, 2, 1], leaving 3 lanes idle for the whole
        // sweep. The balanced partition hands every lane a chunk, so the
        // first batch pass runs with a full mask.
        const W: usize = 8;
        let inputs: Vec<Vec<f64>> = (0..W as i32 + 1).map(|i| vec![f64::from(i)]).collect();
        let chunks = balanced_chunks(&inputs, W);
        assert_eq!(chunks.len(), W, "one chunk per lane");
        assert!(chunks.iter().all(|chunk| !chunk.is_empty()));
        let p = program("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))");
        let machine = Machine::new(&p);
        let mut tracer = BatchHerbgrind::<BigFloat, W>::new(&AnalysisConfig::default());
        let mut memory = BatchMemory::new();
        let lane_inputs: [Option<&[f64]>; W] =
            std::array::from_fn(|l| chunks[l].first().map(|input| input.as_slice()));
        let outcome = machine
            .batched::<W>()
            .run_batch(&lane_inputs, &mut tracer, &mut memory);
        assert!(outcome.errors.iter().all(Option::is_none));
        assert!(
            tracer.lanes.iter().all(|lane| lane.runs() == 1),
            "every lane shard must observe a run in the first pass"
        );
        // And the full sweep is still bit-identical to serial.
        let config = AnalysisConfig::default()
            .with_threads(1)
            .with_batch_width(W);
        let serial = analyze(&p, &inputs, &config).unwrap();
        let batched = analyze_batched(&p, &inputs, &config).unwrap();
        assert_eq!(format!("{serial:?}"), format!("{batched:?}"));
    }

    #[test]
    fn probe_surfaces_the_earliest_input_error() {
        // Lane 1 fails on an earlier *pass* than lane 0, but lane 0's failing
        // input comes earlier in the sweep — the probe must surface the same
        // error the serial drivers stop at (distinguishable here by the
        // reported arity).
        let p = program("(FPCore (x) (+ x 1))");
        let inputs: Vec<Vec<f64>> = vec![
            vec![1.0],
            vec![2.0],
            vec![3.0, 3.5, 3.75], // input 2: fails in lane 0 at position 2
            vec![4.0],
            vec![], // input 4: fails in lane 1 at position 1
        ];
        let serial_err =
            analyze(&p, &inputs, &AnalysisConfig::default().with_threads(1)).unwrap_err();
        let probe_err = probe_local_error::<2>(&p, &inputs, 5.0).unwrap_err();
        assert_eq!(format!("{serial_err:?}"), format!("{probe_err:?}"));
        assert!(
            matches!(probe_err, MachineError::ArityMismatch { actual: 3, .. }),
            "{probe_err:?}"
        );
    }

    #[test]
    fn probe_grows_its_shadow_table_like_the_analysis() {
        // A statement addressing beyond the space announced at on_start must
        // grow the probe's planes (mirroring the analysis's `put_shadow`),
        // not panic.
        let p = program("(FPCore (x) (+ x 1))");
        let mut probe = DdErrorProbe::<2>::new(5.0);
        let args = [1.0f64];
        let lane_inputs: [Option<&[f64]>; 2] = [Some(&args), Some(&args)];
        BatchTracer::on_start(&mut probe, &p, &lane_inputs, 0b11);
        let beyond = p.num_addrs + 7;
        probe.on_const_f(0, beyond, 2.0, 0b11);
        probe.on_copy(1, beyond + 1, beyond, &[Value::F(2.0); 2], 0b11);
        probe.on_compute(
            p.len() + 3,
            RealOp::Add,
            beyond + 2,
            &[beyond, beyond + 1],
            &[[2.0; 2], [2.0; 2]],
            &[4.0; 2],
            0b11,
        );
        probe.on_cast_to_int(2, beyond + 3, beyond + 2, &[4.0; 2], &[4; 2], 0b11);
        let summary = probe.summary();
        assert_eq!(summary.total_ops, 2);
        let row = summary
            .statements
            .iter()
            .find(|row| row.pc == p.len() + 3)
            .expect("out-of-range pc counted");
        assert_eq!(row.executions, 2);
        assert_eq!(row.erroneous, 0, "an exact add has no local error");
    }

    #[test]
    fn probe_threshold_matches_the_analysis_decision_boundary() {
        // The probe's integer ulps bound must sit exactly where the
        // analysis's rounded `log2(ulps + 1) > T` decision flips — including
        // thresholds where the naive `2^T - 1` conversion misclassifies
        // (T = 60: log2(2^60 + 1) rounds to exactly 60.0).
        for threshold in [0.0f64, 0.3, 0.5, 1.0, 4.5, 5.0, 20.0, 32.3, 60.0, 63.9] {
            let probe = DdErrorProbe::<1>::new(threshold);
            let t = probe.threshold_ulps;
            assert!(!probe.flag_all);
            assert!(
                bits_of_ulps(t) <= threshold,
                "T={threshold}: bits({t}) must not exceed the threshold"
            );
            assert!(
                bits_of_ulps(t + 1) > threshold,
                "T={threshold}: bits({}) must exceed the threshold",
                t + 1
            );
        }
        // T = 60 regression: 2^60 ulps is *not* erroneous (its rounded bits
        // are exactly 60.0), though the naive conversion flags it.
        assert!(DdErrorProbe::<1>::new(60.0).threshold_ulps >= 1u64 << 60);
        // At or above the maximum (or NaN), nothing is flagged — not even
        // the saturated NaN distance, whose bits are clamped to the maximum.
        for threshold in [shadowreal::MAX_ERROR_BITS, 100.0, f64::NAN] {
            let probe = DdErrorProbe::<1>::new(threshold);
            assert_eq!(probe.threshold_ulps, u64::MAX, "T={threshold}");
            assert!(!probe.flag_all);
        }
        // Negative thresholds flag everything, zero ulps included.
        let probe = DdErrorProbe::<1>::new(-1.0);
        assert!(probe.flag_all);
    }

    #[test]
    fn probe_flags_the_cancellation_site() {
        let p = program("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))");
        let inputs: Vec<Vec<f64>> = (0..24).map(|i| vec![10f64.powi(i)]).collect();
        let summary = probe_local_error::<8>(&p, &inputs, 5.0).unwrap();
        assert_eq!(summary.total_ops, 24 * 4);
        assert!(summary.statements.iter().any(|row| row.erroneous > 0));
        let worst = summary
            .statements
            .iter()
            .max_by(|a, b| a.max_error_bits.total_cmp(&b.max_error_bits))
            .unwrap();
        assert!(worst.max_error_bits > 20.0, "{worst:?}");
        // The probe's counters are width-independent.
        let serial_probe = probe_local_error::<1>(&p, &inputs, 5.0).unwrap();
        assert_eq!(summary, serial_probe);
    }

    #[test]
    fn probe_handles_loops_and_divergence() {
        let p = program("(FPCore (n) (while (< i n) ((s 0 (+ s (/ 1 i))) (i 1 (+ i 1))) s))");
        let inputs: Vec<Vec<f64>> = (1..14).map(|i| vec![(i * 5) as f64]).collect();
        let wide = probe_local_error::<13>(&p, &inputs, 5.0).unwrap();
        let narrow = probe_local_error::<2>(&p, &inputs, 5.0).unwrap();
        assert_eq!(wide, narrow);
        assert!(wide.total_ops > 0);
    }
}

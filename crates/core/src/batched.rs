//! The batched analysis mode: Herbgrind over the lane-parallel execution
//! engine ([`fpvm::batch`]).
//!
//! # Architecture
//!
//! [`analyze_batched`] splits the input sweep into `W` contiguous chunks and
//! assigns chunk `l` to lane `l` — the same contiguous-chunk sharding
//! [`analyze_parallel`](crate::analysis::analyze_parallel) uses across
//! threads, but across SIMD lanes of one [`BatchMachine`] pass. Each lane
//! owns a full per-lane [`Herbgrind`] shard (its own shadow slot table,
//! record slots, and trace interner, indexed by lane), and the
//! [`BatchHerbgrind`] tracer fans every per-group callback out to the lanes
//! of the group, so **each lane shard observes exactly the serial callback
//! sequence for its inputs**. Folding the lane shards in lane order is then
//! the same contiguous in-input-order merge the parallel engine performs —
//! which is why the batched report is **bit-identical** to serial
//! [`analyze`](crate::analysis::analyze) for every batch width, divergent
//! control flow included (the engine replays each lane's serial statement
//! sequence regardless of grouping).
//!
//! What the batch amortizes or vectorizes per op group: tape dispatch, the
//! tracer callback, the client `f64` arithmetic, the **exact shadow
//! evaluation** (one [`BatchReal::apply_lanes`] call per group — the
//! vectorized [`shadowreal::dd_batch`] kernels for the `DoubleDouble`
//! shadow), and the float side of the local-error computation. The
//! per-lane record observation (trace interning, anti-unification, input
//! characteristics) is folded into the same group call but remains
//! per-lane work; [`DdErrorProbe`] shows the engine's throughput with that
//! bookkeeping stripped to FpDebug-style per-statement error counters.
//!
//! Threads compose with lanes: `config.threads` shards the sweep exactly as
//! the parallel engine does, every shard runs the batched engine on a
//! cloned machine sharing one decoded tape, and shard merges happen in
//! input order.

use crate::analysis::Herbgrind;
use crate::config::AnalysisConfig;
use crate::report::Report;
use fpcore::CmpOp;
use fpvm::batch::{full_mask, lane_active, lane_indices, BatchMemory, BatchTracer, LaneMask};
use fpvm::{Addr, Machine, MachineError, Program, Tracer, Value, MAX_ARITY};
use shadowreal::{apply_f64_lanes, bits_error, BatchReal, BigFloat, DdLanes, RealOp};

/// The lane widths the batched engine is compiled for. Requested widths
/// ([`AnalysisConfig::batch_width`]) outside this menu fall back to the
/// nearest smaller entry; the report is bit-identical either way, so the
/// width only affects throughput. The menu covers the power-of-two widths
/// the vectorized kernels target plus a prime width (13) so non-uniform
/// remainder chunking stays exercised.
pub const SUPPORTED_BATCH_WIDTHS: &[usize] = &[1, 2, 4, 8, 13, 16];

/// The width the engine will actually run for a requested
/// [`AnalysisConfig::batch_width`]: the largest supported width that does
/// not exceed the request (`0` and `1` both select single-lane batches).
pub fn effective_batch_width(requested: usize) -> usize {
    let requested = requested.max(1);
    SUPPORTED_BATCH_WIDTHS
        .iter()
        .copied()
        .filter(|&w| w <= requested)
        .max()
        .unwrap_or(1)
}

/// The Herbgrind analysis attached to a lane batch: one full per-lane
/// analysis shard per lane, driven by per-group callbacks.
///
/// Most events simply fan out to the owning lane's serial [`Tracer`]
/// methods; compute events evaluate the exact operation for the whole group
/// in one [`BatchReal::apply_lanes`] call before finishing each lane's
/// record keeping, so the expensive shadow arithmetic runs lane-vectorized.
#[derive(Debug)]
pub struct BatchHerbgrind<R: BatchReal, const W: usize> {
    lanes: Vec<Herbgrind<R>>,
}

impl<R: BatchReal, const W: usize> BatchHerbgrind<R, W> {
    /// One analysis shard per lane.
    pub fn new(config: &AnalysisConfig) -> Self {
        BatchHerbgrind {
            lanes: (0..W).map(|_| Herbgrind::new(config.clone())).collect(),
        }
    }

    /// Folds the lane shards in lane order — with contiguous-chunk lane
    /// assignment this is the in-input-order merge whose result is
    /// bit-identical to one serial sweep. The merged analysis can be merged
    /// further (thread shards) before reporting.
    pub fn into_merged(self) -> Herbgrind<R> {
        let mut lanes = self.lanes.into_iter();
        let mut merged = lanes.next().expect("at least one lane");
        for lane in lanes {
            merged.merge(lane);
        }
        merged
    }

    /// Folds the lane shards ([`BatchHerbgrind::into_merged`]) and builds
    /// the report.
    pub fn into_report(self) -> Report {
        self.into_merged().report()
    }
}

impl<R: BatchReal, const W: usize> BatchTracer<W> for BatchHerbgrind<R, W> {
    fn on_start(&mut self, program: &Program, lane_inputs: &[Option<&[f64]>; W], mask: LaneMask) {
        for l in lane_indices(mask) {
            if let Some(args) = lane_inputs[l] {
                self.lanes[l].on_start(program, args);
            }
        }
    }

    fn on_compute(
        &mut self,
        pc: usize,
        op: RealOp,
        dest: Addr,
        args: &[Addr],
        arg_values: &[[f64; W]],
        results: &[f64; W],
        mask: LaneMask,
    ) {
        let n = args.len();
        // Lazy leaf shadows per lane, exactly as the serial hot path.
        for l in lane_indices(mask) {
            for (i, &addr) in args.iter().enumerate() {
                self.lanes[l].ensure_shadow(addr, arg_values[i][l]);
            }
        }

        // One lane-vectorized exact evaluation for the whole group. The
        // operand shadows stay borrowed in the lane slot tables while the
        // kernel runs; `BatchReal`'s bit-identity contract guarantees each
        // lane gets exactly the serial `apply_ref` result.
        let mut exact_results: [Option<R>; W] = std::array::from_fn(|_| None);
        let mut local_errs = [0.0f64; W];
        {
            let mut gathered: [[Option<&R>; W]; MAX_ARITY] = [[None; W]; MAX_ARITY];
            for (i, &addr) in args.iter().enumerate() {
                for (l, lane) in self.lanes.iter().enumerate() {
                    if lane_active(mask, l) {
                        gathered[i][l] = Some(lane.shadow_real(addr).expect("operand shadow"));
                    }
                }
            }
            R::apply_lanes(op, &gathered[..n], mask, &mut exact_results);

            // Local error (Figure 4), with the float re-evaluation of the
            // rounded exact operands done lane-vectorized.
            let mut rounded = [[0.0f64; W]; MAX_ARITY];
            for (lanes, arg) in rounded.iter_mut().zip(&gathered[..n]) {
                for l in lane_indices(mask) {
                    lanes[l] = arg[l].expect("operand shadow").to_f64();
                }
            }
            let float_results = apply_f64_lanes(op, &rounded[..n]);
            for l in lane_indices(mask) {
                let exact = exact_results[l].as_ref().expect("lane result");
                local_errs[l] = bits_error(float_results[l], exact.to_f64());
            }
        }

        // Per-lane record keeping, folded into this one group call.
        let mut lane_args = [0.0f64; MAX_ARITY];
        for l in lane_indices(mask) {
            for (slot, lanes) in lane_args.iter_mut().zip(arg_values) {
                *slot = lanes[l];
            }
            let exact = exact_results[l].take().expect("lane result");
            self.lanes[l].finish_compute(
                pc,
                op,
                dest,
                args,
                &lane_args[..n],
                results[l],
                local_errs[l],
                exact,
            );
        }
    }

    fn on_const_f(&mut self, pc: usize, dest: Addr, value: f64, mask: LaneMask) {
        for l in lane_indices(mask) {
            self.lanes[l].on_const_f(pc, dest, value);
        }
    }

    fn on_const_i(&mut self, pc: usize, dest: Addr, value: i64, mask: LaneMask) {
        for l in lane_indices(mask) {
            self.lanes[l].on_const_i(pc, dest, value);
        }
    }

    fn on_copy(&mut self, pc: usize, dest: Addr, src: Addr, values: &[Value; W], mask: LaneMask) {
        for l in lane_indices(mask) {
            self.lanes[l].on_copy(pc, dest, src, values[l]);
        }
    }

    fn on_cast_to_int(
        &mut self,
        pc: usize,
        dest: Addr,
        src: Addr,
        values: &[f64; W],
        results: &[i64; W],
        mask: LaneMask,
    ) {
        for l in lane_indices(mask) {
            self.lanes[l].on_cast_to_int(pc, dest, src, values[l], results[l]);
        }
    }

    fn on_branch(
        &mut self,
        pc: usize,
        cmp: CmpOp,
        lhs: Addr,
        rhs: Addr,
        lhs_values: &[Value; W],
        rhs_values: &[Value; W],
        taken: LaneMask,
        mask: LaneMask,
    ) {
        for l in lane_indices(mask) {
            self.lanes[l].on_branch(
                pc,
                cmp,
                lhs,
                rhs,
                lhs_values[l],
                rhs_values[l],
                lane_active(taken, l),
            );
        }
    }

    fn on_output(&mut self, pc: usize, src: Addr, values: &[f64; W], mask: LaneMask) {
        for l in lane_indices(mask) {
            self.lanes[l].on_output(pc, src, values[l]);
        }
    }
}

/// Runs one batched sweep at compile-time width `W`: contiguous lane
/// chunks, one batch pass per chunk position, per-lane failure isolation
/// with the earliest-input error surfaced — the lane-level mirror of the
/// thread-sharded driver.
fn batched_sweep<R: BatchReal, const W: usize>(
    machine: &Machine<'_>,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<Herbgrind<R>, MachineError> {
    let lane_count = W.min(inputs.len()).max(1);
    let chunk_size = inputs.len().div_ceil(lane_count).max(1);
    let chunks: Vec<&[Vec<f64>]> = inputs.chunks(chunk_size).collect();
    let batch = machine.batched::<W>();
    let mut tracer = BatchHerbgrind::<R, W>::new(config);
    let mut memory = BatchMemory::new();
    let mut failures: [Option<MachineError>; W] = std::array::from_fn(|_| None);
    for position in 0..chunk_size {
        let mut lane_inputs: [Option<&[f64]>; W] = [None; W];
        let mut any = false;
        for (l, chunk) in chunks.iter().enumerate() {
            if failures[l].is_none() {
                if let Some(input) = chunk.get(position) {
                    lane_inputs[l] = Some(input.as_slice());
                    any = true;
                }
            }
        }
        if !any {
            break;
        }
        let outcome = batch.run_batch(&lane_inputs, &mut tracer, &mut memory);
        for (failure, error) in failures.iter_mut().zip(&outcome.errors) {
            if failure.is_none() {
                if let Some(error) = error {
                    // A failed lane stops consuming its chunk — the serial
                    // sweep would have stopped at this input; later chunks
                    // (like later parallel shards) still run.
                    *failure = Some(error.clone());
                }
            }
        }
    }
    if let Some(error) = failures.iter().flatten().next() {
        return Err(error.clone());
    }
    Ok(tracer.into_merged())
}

/// Dispatches a sweep to the compiled batch width.
fn dispatch_sweep<R: BatchReal>(
    machine: &Machine<'_>,
    width: usize,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<Herbgrind<R>, MachineError> {
    match width {
        2 => batched_sweep::<R, 2>(machine, inputs, config),
        4 => batched_sweep::<R, 4>(machine, inputs, config),
        8 => batched_sweep::<R, 8>(machine, inputs, config),
        13 => batched_sweep::<R, 13>(machine, inputs, config),
        16 => batched_sweep::<R, 16>(machine, inputs, config),
        _ => batched_sweep::<R, 1>(machine, inputs, config),
    }
}

/// Runs a program under the batched analysis for every input vector, using
/// the default [`BigFloat`] shadow reals.
///
/// Interchangeable with [`analyze`](crate::analysis::analyze) and
/// [`analyze_parallel`](crate::analysis::analyze_parallel): the report is
/// bit-identical for every batch width and thread count, enforced by the
/// batch-equivalence test suite.
///
/// # Errors
///
/// Propagates [`MachineError`] like the serial driver: the error of the
/// earliest failing input is returned.
pub fn analyze_batched(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<Report, MachineError> {
    analyze_batched_with_shadow::<BigFloat>(program, inputs, config)
}

/// Runs the batched analysis with an explicit shadow-real type. The
/// `DoubleDouble` shadow evaluates through the lane-vectorized
/// [`shadowreal::dd_batch`] kernels; `f64` through vectorized lane loops;
/// [`BigFloat`] falls back to scalar kernels per lane while still amortizing
/// decode and dispatch.
///
/// # Errors
///
/// Propagates [`MachineError`] from the underlying interpreter; when several
/// inputs fail, the earliest failing input's error is returned.
pub fn analyze_batched_with_shadow<R: BatchReal + Send>(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<Report, MachineError> {
    let width = effective_batch_width(config.batch_width);
    let threads = config.effective_threads(inputs.len());
    // One decode for the whole sweep: thread shards clone the machine and
    // share its tape.
    let shared = Machine::new(program).with_step_limit(config.step_limit);
    if threads <= 1 || inputs.len() <= 1 {
        return dispatch_sweep::<R>(&shared, width, inputs, config).map(|a| a.report());
    }
    let chunk_size = inputs.len().div_ceil(threads);
    let shards: Vec<Result<Herbgrind<R>, MachineError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .chunks(chunk_size)
            .map(|chunk| {
                let machine = shared.clone();
                scope.spawn(move || dispatch_sweep::<R>(&machine, width, chunk, config))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("batched analysis shard panicked"))
            .collect()
    });
    // Merge thread shards in shard (= input) order, exactly as the parallel
    // engine does; the earliest shard's error is the serial sweep's error.
    let mut merged: Option<Herbgrind<R>> = None;
    for shard in shards {
        let shard = shard?;
        match &mut merged {
            Some(accumulated) => accumulated.merge(shard),
            None => merged = Some(shard),
        }
    }
    let merged = merged.unwrap_or_else(|| Herbgrind::<R>::new(config.clone()));
    Ok(merged.report())
}

/// [`shadowreal::ordinal`] without the NaN branch: identical for every
/// non-NaN input (the probe patches NaN lanes through the exact
/// [`shadowreal::ulps_between`] afterwards), and a straight-line
/// bit-manipulation the compiler can keep in vector registers.
#[inline]
fn branchless_ordinal(x: f64) -> i64 {
    let bits = x.to_bits();
    let magnitude = (bits & 0x7fff_ffff_ffff_ffff) as i64;
    if bits >> 63 == 0 {
        magnitude
    } else {
        -magnitude
    }
}

/// Per-statement summary produced by [`DdErrorProbe`]: FpDebug-style
/// local-error counters without traces, influences, or symbolic records.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LocalErrorSummary {
    /// Program counters with at least one execution, ascending.
    pub statements: Vec<LocalErrorRow>,
    /// Total compute operations observed across all lanes and runs.
    pub total_ops: u64,
}

/// One statement's local-error counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LocalErrorRow {
    /// The statement (program counter).
    pub pc: usize,
    /// Executions across all lanes and runs.
    pub executions: u64,
    /// Executions whose local error exceeded the probe threshold.
    pub erroneous: u64,
    /// Maximum local error observed, in bits (`log2(1 + ulps)`).
    pub max_error_bits: f64,
}

/// A fully lane-vectorized local-error probe over the `DoubleDouble` shadow.
///
/// This is the batched engine with the per-lane record machinery stripped
/// away: shadow memory is a struct-of-arrays [`DdLanes`] plane per address
/// (so operand reads need no gather at all), every compute evaluates the
/// exact operation through the vectorized [`shadowreal::dd_batch`] kernels,
/// and local error is tallied in integer ulps per statement — the
/// `FpDebug`-style detection layer of the analysis at memory-bandwidth
/// speed. It answers "where is local error introduced, how often, how big"
/// without root-cause traces, which is exactly the per-op work the full
/// analysis adds on top.
#[derive(Debug)]
pub struct DdErrorProbe<const W: usize> {
    shadows: Vec<DdLanes<W>>,
    executions: Vec<u64>,
    erroneous: Vec<u64>,
    max_ulps: Vec<u64>,
    threshold_ulps: u64,
    total_ops: u64,
}

impl<const W: usize> DdErrorProbe<W> {
    /// A probe flagging statements whose local error exceeds
    /// `threshold_bits` (the analysis's local-error threshold, converted to
    /// an exact integer ulps bound: `bits > T ⟺ ulps > 2^T − 1`).
    pub fn new(threshold_bits: f64) -> Self {
        let threshold_ulps = if threshold_bits >= shadowreal::MAX_ERROR_BITS {
            u64::MAX - 1
        } else {
            (threshold_bits.max(0.0).exp2() - 1.0) as u64
        };
        DdErrorProbe {
            shadows: Vec::new(),
            executions: Vec::new(),
            erroneous: Vec::new(),
            max_ulps: Vec::new(),
            threshold_ulps,
            total_ops: 0,
        }
    }

    /// Folds the counters into an ordered summary.
    pub fn summary(&self) -> LocalErrorSummary {
        let statements = self
            .executions
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(pc, &executions)| LocalErrorRow {
                pc,
                executions,
                erroneous: self.erroneous[pc],
                max_error_bits: if self.max_ulps[pc] == u64::MAX {
                    shadowreal::MAX_ERROR_BITS
                } else {
                    (((self.max_ulps[pc] as f64) + 1.0).log2()).min(shadowreal::MAX_ERROR_BITS)
                },
            })
            .collect();
        LocalErrorSummary {
            statements,
            total_ops: self.total_ops,
        }
    }
}

impl<const W: usize> BatchTracer<W> for DdErrorProbe<W> {
    fn on_start(&mut self, program: &Program, lane_inputs: &[Option<&[f64]>; W], mask: LaneMask) {
        self.shadows.clear();
        self.shadows.resize(program.num_addrs, DdLanes::zero());
        if self.executions.len() < program.len() {
            self.executions.resize(program.len(), 0);
            self.erroneous.resize(program.len(), 0);
            self.max_ulps.resize(program.len(), 0);
        }
        for l in lane_indices(mask) {
            if let Some(args) = lane_inputs[l] {
                for (&addr, &value) in program.arg_addrs.iter().zip(args) {
                    self.shadows[addr].hi[l] = value;
                    self.shadows[addr].lo[l] = 0.0;
                }
            }
        }
    }

    fn on_compute(
        &mut self,
        pc: usize,
        op: RealOp,
        dest: Addr,
        args: &[Addr],
        _arg_values: &[[f64; W]],
        _results: &[f64; W],
        mask: LaneMask,
    ) {
        // Gather-free operand reads: the shadow planes are already lane
        // arrays.
        let mut operands = [DdLanes::zero(); MAX_ARITY];
        for (lanes, &addr) in operands.iter_mut().zip(args) {
            *lanes = self.shadows[addr];
        }
        let exact = shadowreal::dd_batch::apply(op, &operands[..args.len()]);
        // Local error: the rounded exact operands are the hi planes, so the
        // float re-evaluation is one vectorized lane call.
        let mut rounded = [[0.0f64; W]; MAX_ARITY];
        for (lanes, operand) in rounded.iter_mut().zip(&operands[..args.len()]) {
            *lanes = operand.hi;
        }
        let float_results = apply_f64_lanes(op, &rounded[..args.len()]);
        // Branch-free ulps distance per lane, with the (rare) NaN lanes
        // patched afterwards so every lane agrees exactly with
        // `shadowreal::ulps_between`. NaN detection is itself branch-free:
        // `x * 0.0` is NaN iff `x` is non-finite, and a non-finite shadow or
        // float result is exactly the case the slow path must arbitrate.
        let mut ulps = [0u64; W];
        let mut nonfinite_probe = 0.0f64;
        for l in 0..W {
            ulps[l] =
                branchless_ordinal(float_results[l]).abs_diff(branchless_ordinal(exact.hi[l]));
            nonfinite_probe += float_results[l] * 0.0 + exact.hi[l] * 0.0;
        }
        if nonfinite_probe.is_nan() {
            for l in 0..W {
                ulps[l] = shadowreal::ulps_between(float_results[l], exact.hi[l]);
            }
        }
        let mut erroneous = 0u64;
        let mut max_ulps = self.max_ulps[pc];
        let full = full_mask(W);
        if mask == full {
            for &u in &ulps {
                erroneous += u64::from(u > self.threshold_ulps);
                max_ulps = max_ulps.max(u);
            }
        } else {
            for (l, &lane_ulps) in ulps.iter().enumerate() {
                let u = if lane_active(mask, l) { lane_ulps } else { 0 };
                erroneous += u64::from(u > self.threshold_ulps);
                max_ulps = max_ulps.max(u);
            }
        }
        let active = mask.count_ones() as u64;
        self.executions[pc] += active;
        self.erroneous[pc] += erroneous;
        self.max_ulps[pc] = max_ulps;
        self.total_ops += active;
        // Store of the destination plane, whole-group when convergent.
        if mask == full {
            self.shadows[dest] = exact;
        } else {
            let dest_plane = &mut self.shadows[dest];
            for l in 0..W {
                if lane_active(mask, l) {
                    dest_plane.hi[l] = exact.hi[l];
                    dest_plane.lo[l] = exact.lo[l];
                }
            }
        }
    }

    fn on_const_f(&mut self, _pc: usize, dest: Addr, value: f64, mask: LaneMask) {
        let plane = &mut self.shadows[dest];
        for l in 0..W {
            if lane_active(mask, l) {
                plane.hi[l] = value;
                plane.lo[l] = 0.0;
            }
        }
    }

    fn on_const_i(&mut self, _pc: usize, dest: Addr, value: i64, mask: LaneMask) {
        let plane = &mut self.shadows[dest];
        for l in 0..W {
            if lane_active(mask, l) {
                plane.hi[l] = value as f64;
                plane.lo[l] = 0.0;
            }
        }
    }

    fn on_copy(&mut self, _pc: usize, dest: Addr, src: Addr, _values: &[Value; W], mask: LaneMask) {
        let src_plane = self.shadows[src];
        let dest_plane = &mut self.shadows[dest];
        for l in 0..W {
            if lane_active(mask, l) {
                dest_plane.hi[l] = src_plane.hi[l];
                dest_plane.lo[l] = src_plane.lo[l];
            }
        }
    }

    fn on_cast_to_int(
        &mut self,
        _pc: usize,
        dest: Addr,
        _src: Addr,
        _values: &[f64; W],
        results: &[i64; W],
        mask: LaneMask,
    ) {
        let plane = &mut self.shadows[dest];
        for (l, &result) in results.iter().enumerate() {
            if lane_active(mask, l) {
                plane.hi[l] = result as f64;
                plane.lo[l] = 0.0;
            }
        }
    }
}

/// Sweeps `inputs` through the [`DdErrorProbe`] at compile-time width `W`
/// with the same contiguous lane chunking as [`analyze_batched`], and
/// returns the per-statement local-error summary.
///
/// # Errors
///
/// Returns the first per-lane [`MachineError`] encountered (the probe does
/// not replicate the full driver's earliest-input error ordering).
pub fn probe_local_error<const W: usize>(
    program: &Program,
    inputs: &[Vec<f64>],
    threshold_bits: f64,
) -> Result<LocalErrorSummary, MachineError> {
    let machine = Machine::new(program);
    let batch = machine.batched::<W>();
    let lane_count = W.min(inputs.len()).max(1);
    let chunk_size = inputs.len().div_ceil(lane_count).max(1);
    let chunks: Vec<&[Vec<f64>]> = inputs.chunks(chunk_size).collect();
    let mut probe = DdErrorProbe::<W>::new(threshold_bits);
    let mut memory = BatchMemory::new();
    for position in 0..chunk_size {
        let mut lane_inputs: [Option<&[f64]>; W] = [None; W];
        let mut any = false;
        for (l, chunk) in chunks.iter().enumerate() {
            if let Some(input) = chunk.get(position) {
                lane_inputs[l] = Some(input.as_slice());
                any = true;
            }
        }
        if !any {
            break;
        }
        let outcome = batch.run_batch(&lane_inputs, &mut probe, &mut memory);
        // A failure invalidates the summary, so stop the sweep right away
        // instead of burning the remaining passes on a result that will be
        // discarded.
        if let Some((_, error)) = outcome.first_error() {
            return Err(error.clone());
        }
    }
    Ok(probe.summary())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use fpcore::parse_core;
    use fpvm::compile_core;

    fn program(src: &str) -> Program {
        compile_core(&parse_core(src).unwrap(), Default::default()).unwrap()
    }

    #[test]
    fn width_fallback_picks_nearest_smaller_supported() {
        assert_eq!(effective_batch_width(0), 1);
        assert_eq!(effective_batch_width(1), 1);
        assert_eq!(effective_batch_width(3), 2);
        assert_eq!(effective_batch_width(8), 8);
        assert_eq!(effective_batch_width(12), 8);
        assert_eq!(effective_batch_width(13), 13);
        assert_eq!(effective_batch_width(100), 16);
    }

    #[test]
    fn batched_default_width_matches_serial() {
        let p = program("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))");
        let inputs: Vec<Vec<f64>> = (0..30).map(|i| vec![10f64.powi(i)]).collect();
        let config = AnalysisConfig::default().with_threads(1);
        let serial = analyze(&p, &inputs, &config).unwrap();
        let batched = analyze_batched(&p, &inputs, &config).unwrap();
        assert_eq!(format!("{serial:?}"), format!("{batched:?}"));
    }

    #[test]
    fn batched_threads_compose_with_lanes() {
        let p = program("(FPCore (x y) (- (sqrt (+ (* x x) (* y y))) x))");
        let inputs: Vec<Vec<f64>> = (1..40)
            .map(|i| vec![0.25 / i as f64, 1e-9 / i as f64])
            .collect();
        let serial = analyze(&p, &inputs, &AnalysisConfig::default().with_threads(1)).unwrap();
        let config = AnalysisConfig::default()
            .with_threads(3)
            .with_batch_width(4);
        let batched = analyze_batched(&p, &inputs, &config).unwrap();
        assert_eq!(format!("{serial:?}"), format!("{batched:?}"));
    }

    #[test]
    fn batched_surfaces_the_earliest_input_error() {
        let p = program("(FPCore (n) (while (< t n) ((t 0 (+ t 0.125)) (c 0 (+ c 1))) c))");
        let inputs: Vec<Vec<f64>> = (1..=8).map(|n| vec![n as f64 * 100.0]).collect();
        let config = AnalysisConfig {
            step_limit: 10,
            ..AnalysisConfig::default().with_threads(1)
        };
        let serial_err = analyze(&p, &inputs, &config).unwrap_err();
        let batched_err = analyze_batched(&p, &inputs, &config).unwrap_err();
        assert_eq!(format!("{serial_err:?}"), format!("{batched_err:?}"));
    }

    #[test]
    fn probe_flags_the_cancellation_site() {
        let p = program("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))");
        let inputs: Vec<Vec<f64>> = (0..24).map(|i| vec![10f64.powi(i)]).collect();
        let summary = probe_local_error::<8>(&p, &inputs, 5.0).unwrap();
        assert_eq!(summary.total_ops, 24 * 4);
        assert!(summary.statements.iter().any(|row| row.erroneous > 0));
        let worst = summary
            .statements
            .iter()
            .max_by(|a, b| a.max_error_bits.total_cmp(&b.max_error_bits))
            .unwrap();
        assert!(worst.max_error_bits > 20.0, "{worst:?}");
        // The probe's counters are width-independent.
        let serial_probe = probe_local_error::<1>(&p, &inputs, 5.0).unwrap();
        assert_eq!(summary, serial_probe);
    }

    #[test]
    fn probe_handles_loops_and_divergence() {
        let p = program("(FPCore (n) (while (< i n) ((s 0 (+ s (/ 1 i))) (i 1 (+ i 1))) s))");
        let inputs: Vec<Vec<f64>> = (1..14).map(|i| vec![(i * 5) as f64]).collect();
        let wide = probe_local_error::<13>(&p, &inputs, 5.0).unwrap();
        let narrow = probe_local_error::<2>(&p, &inputs, 5.0).unwrap();
        assert_eq!(wide, narrow);
        assert!(wide.total_ops > 0);
    }
}

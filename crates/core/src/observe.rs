//! Telemetry-capturing sweep drivers: every analysis entry point, returning
//! a [`telemetry::SweepTelemetry`] snapshot alongside the report.
//!
//! Each wrapper runs the corresponding plain or fault-isolated driver inside
//! a [`telemetry::SweepCapture`] scoped to the sweep, with the whole sweep
//! timed under [`telemetry::Phase::Sweep`]. Capture honors
//! [`AnalysisConfig::telemetry`]:
//!
//! * [`TelemetryMode::Off`] (the default) — no capture lock is taken, the
//!   registry is untouched, and the wrapper returns
//!   [`SweepTelemetry::disabled`]. Every recording site in the pipeline
//!   reduces to one relaxed atomic load and a predictable branch, so the
//!   off-mode sweep costs the same as calling the plain driver directly
//!   (CI asserts the overhead stays within noise of the committed
//!   baseline).
//! * [`TelemetryMode::On`] — the process-global registry is reset, recording
//!   is enabled for the duration of the sweep, and the snapshot is read out
//!   before recording is disabled again. Captures are serialized through a
//!   global lock because the registry is process-wide; concurrent
//!   telemetry-on sweeps from different threads queue rather than mixing
//!   their counts.
//!
//! The report is bit-identical whether telemetry is on or off — recording
//! never feeds back into the analysis (asserted for all four driver families
//! in `tests/telemetry_determinism.rs`).

use crate::config::AnalysisConfig;
use crate::report::Report;
use fpvm::{MachineError, Program};
use telemetry::{SweepCapture, SweepTelemetry, TelemetryMode};

/// Runs `sweep` inside a capture scoped by `mode`, timing it as
/// [`telemetry::Phase::Sweep`], and pairs its output with the snapshot.
fn with_capture<T>(mode: TelemetryMode, sweep: impl FnOnce() -> T) -> (T, SweepTelemetry) {
    let capture = SweepCapture::begin(mode);
    let out = {
        let _span = telemetry::span(telemetry::Phase::Sweep);
        sweep()
    };
    (out, capture.finish())
}

/// [`analyze`](crate::analyze) with a telemetry snapshot of the sweep.
pub fn analyze_telemetry(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<(Report, SweepTelemetry), MachineError> {
    let (result, tel) = with_capture(config.telemetry, || {
        crate::analysis::analyze(program, inputs, config)
    });
    result.map(|report| (report, tel))
}

/// [`analyze_parallel`](crate::analyze_parallel) with a telemetry snapshot
/// of the sweep.
pub fn analyze_parallel_telemetry(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<(Report, SweepTelemetry), MachineError> {
    let (result, tel) = with_capture(config.telemetry, || {
        crate::analysis::analyze_parallel(program, inputs, config)
    });
    result.map(|report| (report, tel))
}

/// [`analyze_batched`](crate::analyze_batched) with a telemetry snapshot of
/// the sweep.
pub fn analyze_batched_telemetry(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<(Report, SweepTelemetry), MachineError> {
    let (result, tel) = with_capture(config.telemetry, || {
        crate::batched::analyze_batched(program, inputs, config)
    });
    result.map(|report| (report, tel))
}

/// [`analyze_tiered`](crate::analyze_tiered) with a telemetry snapshot of
/// the sweep: the tier split also lands in the `tiered.*` counters, so the
/// snapshot subsumes [`TierStats`](crate::TierStats).
pub fn analyze_tiered_telemetry(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<(Report, SweepTelemetry), MachineError> {
    let (result, tel) = with_capture(config.telemetry, || {
        crate::tiered::analyze_tiered(program, inputs, config)
    });
    result.map(|report| (report, tel))
}

/// [`analyze_isolated`](crate::analyze_isolated) with a telemetry snapshot
/// of the sweep, including the `quarantine.*` fault table.
pub fn analyze_isolated_telemetry(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> (Report, SweepTelemetry) {
    with_capture(config.telemetry, || {
        crate::quarantine::analyze_isolated(program, inputs, config)
    })
}

/// [`analyze_parallel_isolated`](crate::analyze_parallel_isolated) with a
/// telemetry snapshot of the sweep.
pub fn analyze_parallel_isolated_telemetry(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> (Report, SweepTelemetry) {
    with_capture(config.telemetry, || {
        crate::quarantine::analyze_parallel_isolated(program, inputs, config)
    })
}

/// [`analyze_batched_isolated`](crate::analyze_batched_isolated) with a
/// telemetry snapshot of the sweep.
pub fn analyze_batched_isolated_telemetry(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> (Report, SweepTelemetry) {
    with_capture(config.telemetry, || {
        crate::quarantine::analyze_batched_isolated(program, inputs, config)
    })
}

/// [`analyze_tiered_isolated`](crate::analyze_tiered_isolated) with a
/// telemetry snapshot of the sweep. The standalone
/// [`analyze_tiered_isolated_with_stats`](crate::quarantine::analyze_tiered_isolated_with_stats)
/// accessor still returns [`TierStats`](crate::TierStats) without capture;
/// here the tier split is read from the snapshot's `tiered.*` counters.
pub fn analyze_tiered_isolated_telemetry(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> (Report, SweepTelemetry) {
    with_capture(config.telemetry, || {
        crate::quarantine::analyze_tiered_isolated(program, inputs, config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::parse_core;
    use fpvm::compile_core;

    fn cancellation_setup() -> (Program, Vec<Vec<f64>>) {
        let core = parse_core("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
        let program = compile_core(&core, Default::default()).unwrap();
        let inputs = (0..16).map(|i| vec![10f64.powi(i / 2)]).collect();
        (program, inputs)
    }

    #[test]
    fn off_mode_returns_disabled_snapshot() {
        let (program, inputs) = cancellation_setup();
        let config = AnalysisConfig::default();
        let (report, tel) = analyze_telemetry(&program, &inputs, &config).unwrap();
        assert!(report.has_significant_error());
        assert!(!tel.enabled);
        assert_eq!(tel.counter("fpvm.steps"), 0);
    }

    #[test]
    fn on_mode_counts_steps_and_ops() {
        let (program, inputs) = cancellation_setup();
        let config = AnalysisConfig::default().with_telemetry(TelemetryMode::On);
        let (report, tel) = analyze_telemetry(&program, &inputs, &config).unwrap();
        assert!(report.has_significant_error());
        assert!(tel.enabled);
        assert!(tel.counter("fpvm.steps") > 0);
        assert!(tel.counter("shadow.bigfloat_ops") > 0);
        assert!(tel.phase(telemetry::Phase::Sweep).count >= 1);
    }

    #[test]
    fn tiered_snapshot_subsumes_tier_stats() {
        let (program, inputs) = cancellation_setup();
        let config = AnalysisConfig::default().with_telemetry(TelemetryMode::On);
        let (_, stats) =
            crate::tiered::analyze_tiered_with_stats(&program, &inputs, &config).unwrap();
        let (_, tel) = analyze_tiered_telemetry(&program, &inputs, &config).unwrap();
        assert_eq!(
            tel.counter("tiered.inputs_certified"),
            stats.certified_inputs as u64
        );
        assert_eq!(
            tel.counter("tiered.inputs_escalated"),
            stats.escalated_inputs() as u64
        );
    }

    #[test]
    fn capture_disables_recording_after_finish() {
        let (program, inputs) = cancellation_setup();
        let config = AnalysisConfig::default().with_telemetry(TelemetryMode::On);
        let _ = analyze_batched_telemetry(&program, &inputs, &config).unwrap();
        assert!(!telemetry::enabled());
    }
}

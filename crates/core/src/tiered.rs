//! Tiered adaptive-precision analysis: probe → escalate → certify.
//!
//! # Architecture
//!
//! [`analyze_tiered`] runs the input sweep in two passes:
//!
//! 1. **Certify pass.** Every input runs once under [`CertifyProbe`] — the
//!    lane-parallel engine with a `DoubleDouble` shadow plane plus a
//!    per-value certificate bound `E` with the invariant
//!    `|value_dd − value_big| ≤ E` ([`shadowreal::cert`]). At every point
//!    where the full analysis makes a *decision* from a shadow value — the
//!    double rounding feeding local and total error, the compensation
//!    equality test (§5.3), a branch comparison — the probe checks that the
//!    widened bound cannot flip the decision. A lane where any check fails
//!    is marked uncertified for that input.
//!
//! 2. **Escalate pass.** Inputs are partitioned, in input order, into
//!    maximal contiguous groups of equal certification. Certified groups run
//!    the full record-keeping analysis with the `DoubleDouble` shadow;
//!    uncertified groups escalate to the `BigFloat` shadow. The per-group
//!    [`AnalysisState`]s are folded in input order — the same contiguous
//!    in-order merge the parallel and batched drivers use.
//!
//! # Why the report is bit-identical to the all-`BigFloat` analysis
//!
//! Everything the analysis *records* is derived from doubles: client values,
//! rounded shadow values (`to_f64`), error bits, and boolean decisions.
//! The certificate machinery guarantees that for a certified input every one
//! of those doubles is the same under both shadows:
//!
//! - every computed shadow value has a certified rounding
//!   ([`cert::rounding_certified`]), so `to_f64` agrees — covering the
//!   rounded operands and result of the local-error computation (Figure 4),
//!   the total error at outputs, and the truncation at float→int casts;
//! - leaf shadows (arguments, constants, lazily shadowed locations) are
//!   created from the same double in both tiers, so they are exactly equal
//!   (`E = 0`);
//! - every comparison decision — branch predicates and the compensation
//!   pass-through equality — is certified separation-or-exactness
//!   ([`cert::compare_certified`]), so the `Ordering` agrees.
//!
//! Identical doubles and identical decisions mean each lane shard of the
//! full analysis accumulates identical records under either shadow, and the
//! in-order merge of the two passes' groups reproduces one serial
//! `BigFloat` sweep bit for bit. The probe is **conservative**: every bound
//! carries the explicit widening margin [`cert::WIDENING`], and anything the
//! certificate cannot prove (IEEE specials, out-of-domain library calls,
//! unsupported operations, values near a rounding boundary) fails closed
//! into the `BigFloat` tier. The differential suite checks the identity
//! end to end; a probe bug can cost throughput, never correctness of this
//! contract's *enforcement* — the oracle compares reports, not certificates.
//!
//! Precision is tiered too: below [`cert::MIN_TIER_PRECISION`] bits of
//! requested shadow precision the `DoubleDouble` tier cannot promise
//! anything (its own ~106-bit significand stops dominating the BigFloat
//! rounding terms), so the driver skips the probe and runs the whole sweep
//! in the `BigFloat` tier.

// Quarantine semantics depend on faults being *typed*: a stray `.unwrap()`
// in driver code turns a recoverable per-input fault into a sweep-wide
// panic, so bare unwraps are denied here (tests opt back in locally).
#![deny(clippy::unwrap_used)]

use crate::analysis::{balanced_chunks, AnalysisState};
use crate::batched::{dispatch_sweep, effective_batch_width};
use crate::config::AnalysisConfig;
use crate::report::Report;
use fpcore::CmpOp;
use fpvm::batch::{lane_active, lane_indices, BatchMemory, BatchTracer, LaneMask};
use fpvm::{Addr, Machine, MachineError, Program, Value, MAX_ARITY};
use shadowreal::cert::{self, CertParams};
use shadowreal::{dd_batch, BigFloat, DdLanes, DoubleDouble, RealOp};
use std::sync::Arc;

/// How a tiered sweep split its inputs between the shadow tiers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Inputs analyzed (both tiers together).
    pub total_inputs: usize,
    /// Inputs whose probe pass certified the `DoubleDouble` tier.
    pub certified_inputs: usize,
}

impl TierStats {
    /// Inputs escalated to the `BigFloat` tier.
    pub fn escalated_inputs(&self) -> usize {
        self.total_inputs - self.certified_inputs
    }

    fn absorb(&mut self, other: TierStats) {
        self.total_inputs += other.total_inputs;
        self.certified_inputs += other.certified_inputs;
    }
}

/// Which certificate check first failed a probe lane — the telemetry
/// attribution for an escalation ("escalation causes by `cert` failure
/// kind"). Lane execution is bit-identical to serial, so the first failing
/// check per input is deterministic across lane widths and thread counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CertFailKind {
    /// [`cert::rounding_certified`] could not pin the rounded result.
    Rounding,
    /// A §5.3 compensation pass-through equality was not certified.
    Compensation,
    /// A branch comparison was not certified separated-or-exact.
    Branch,
}

/// The certify-pass tracer: a lane-parallel `DoubleDouble` shadow execution
/// that carries a certificate bound per shadow value and a sticky per-lane
/// verdict per run.
///
/// The shadow semantics mirror the full analysis exactly — the same lazy
/// leaf creation ([`Herbgrind::ensure_shadow`](crate::analysis::Herbgrind)
/// creates a leaf from the client double the first time an unshadowed
/// location is read), the same copy sharing, the same clearing on integer
/// stores — evaluated through the same vectorized [`shadowreal::dd_batch`]
/// kernels the full `DoubleDouble` analysis uses, which are bit-identical
/// per lane to the scalar shadow. The certificate layer rides on top:
/// leaves are exact (`E = 0`), computes propagate bounds through
/// [`cert::propagate`] and certify the result's rounding, and every
/// comparison decision the full analysis would make is certified or the
/// lane's verdict drops.
#[derive(Debug)]
pub struct CertifyProbe<const W: usize> {
    /// `DoubleDouble` shadow planes, one per address (struct-of-arrays).
    values: Vec<DdLanes<W>>,
    /// Certificate bound per address per lane: `|dd − big| ≤ errs[a][l]`.
    errs: Vec<[f64; W]>,
    /// Which lanes of each address hold a shadow — the plane analogue of the
    /// slot table's `Some`/`None`, so lazy leaf creation mirrors the
    /// analysis exactly.
    written: Vec<LaneMask>,
    /// Per-lane verdict for the current run; sticky until the next pass.
    certified: [bool; W],
    /// The check that first dropped each lane's verdict this run (telemetry
    /// attribution only; never read by the verdict logic).
    fail_kinds: [Option<CertFailKind>; W],
    params: CertParams,
    /// Whether the full analysis will run compensation detection (§5.3),
    /// whose pass-through equality tests must then be certified too.
    detect_compensation: bool,
}

impl<const W: usize> CertifyProbe<W> {
    /// A probe certifying against `params`, mirroring an analysis configured
    /// with `detect_compensation`.
    pub fn new(params: CertParams, detect_compensation: bool) -> Self {
        CertifyProbe {
            values: Vec::new(),
            errs: Vec::new(),
            written: Vec::new(),
            certified: [true; W],
            fail_kinds: [None; W],
            params,
            detect_compensation,
        }
    }

    /// The verdict for lane `l` of the last batch pass: true when every
    /// decision of that lane's run was certified.
    pub fn lane_certified(&self, l: usize) -> bool {
        self.certified[l]
    }

    /// The certificate check that first failed lane `l` this run, if any.
    fn lane_fail_kind(&self, l: usize) -> Option<CertFailKind> {
        self.fail_kinds[l]
    }

    /// Grows the planes on the cold path, like the analysis's `put_shadow` —
    /// statements may address beyond the space announced at `on_start`.
    #[inline]
    fn grow(&mut self, addr: Addr) {
        if addr >= self.values.len() {
            self.values.resize(addr + 1, DdLanes::zero());
            self.errs.resize(addr + 1, [0.0; W]);
            self.written.resize(addr + 1, 0);
        }
    }

    /// Installs an exact leaf shadow (the client double, `E = 0`).
    #[inline]
    fn seed(&mut self, addr: Addr, l: usize, value: f64) {
        self.values[addr].set(l, DoubleDouble::from_f64(value));
        self.errs[addr][l] = 0.0;
        self.written[addr] |= 1 << l;
    }

    /// Lazy leaf creation: the probe's `ensure_shadow`. Exact both tiers
    /// (same double), so no certificate check is needed.
    #[inline]
    fn ensure(&mut self, addr: Addr, l: usize, value: f64) {
        if !lane_active(self.written[addr], l) {
            self.seed(addr, l, value);
        }
    }
}

impl<const W: usize> BatchTracer<W> for CertifyProbe<W> {
    fn on_start(&mut self, program: &Program, lane_inputs: &[Option<&[f64]>; W], mask: LaneMask) {
        self.values.clear();
        self.values.resize(program.num_addrs, DdLanes::zero());
        self.errs.clear();
        self.errs.resize(program.num_addrs, [0.0; W]);
        self.written.clear();
        self.written.resize(program.num_addrs, 0);
        self.certified = [true; W];
        self.fail_kinds = [None; W];
        for l in lane_indices(mask) {
            if let Some(args) = lane_inputs[l] {
                for (&addr, &value) in program.arg_addrs.iter().zip(args) {
                    self.seed(addr, l, value);
                }
            }
        }
    }

    fn on_compute(
        &mut self,
        _pc: usize,
        op: RealOp,
        dest: Addr,
        args: &[Addr],
        arg_values: &[[f64; W]],
        _results: &[f64; W],
        mask: LaneMask,
    ) {
        let n = args.len();
        for (i, &addr) in args.iter().enumerate() {
            self.grow(addr);
            for l in lane_indices(mask) {
                self.ensure(addr, l, arg_values[i][l]);
            }
        }
        // One vectorized exact evaluation for the group — the same kernels
        // (hence bit-identical lane values) as the full DoubleDouble tier.
        let mut operands = [DdLanes::zero(); MAX_ARITY];
        let mut operand_errs = [[0.0f64; W]; MAX_ARITY];
        for (i, &addr) in args.iter().enumerate() {
            operands[i] = self.values[addr];
            operand_errs[i] = self.errs[addr];
        }
        let exact = dd_batch::apply(op, &operands[..n]);
        let mut result_errs = [f64::INFINITY; W];
        for l in lane_indices(mask) {
            if !self.certified[l] {
                continue;
            }
            let lane_args: [DoubleDouble; MAX_ARITY] = std::array::from_fn(|i| operands[i].get(l));
            let mut pairs: [(&DoubleDouble, f64); MAX_ARITY] = [(&lane_args[0], 0.0); MAX_ARITY];
            for (pair, (arg, errs)) in pairs.iter_mut().zip(lane_args.iter().zip(&operand_errs)) {
                *pair = (arg, errs[l]);
            }
            let result = exact.get(l);
            let e = cert::propagate(op, &pairs[..n], &result, &self.params);
            // The rounded result feeds the local error of this very
            // operation (and, downstream, total error and casts), so an
            // uncertifiable rounding fails the lane immediately.
            let mut ok = cert::rounding_certified(&result, e);
            let mut fail_kind = CertFailKind::Rounding;
            if ok && self.detect_compensation && matches!(op, RealOp::Add | RealOp::Sub) {
                // §5.3 pass-through tests: `exact_result.eq_value(arg)` for
                // every candidate argument (subtraction never passes its
                // second argument through). The subsequent error comparison
                // only consumes certified roundings, so certifying the
                // equality decisions certifies the whole detection.
                for (i, (arg, errs)) in lane_args[..n].iter().zip(&operand_errs).enumerate() {
                    if op == RealOp::Sub && i == 1 {
                        continue;
                    }
                    if !cert::compare_certified(&result, e, arg, errs[l]) {
                        ok = false;
                        fail_kind = CertFailKind::Compensation;
                        break;
                    }
                }
            }
            if ok {
                result_errs[l] = e;
            } else {
                self.certified[l] = false;
                self.fail_kinds[l].get_or_insert(fail_kind);
            }
        }
        self.grow(dest);
        for l in lane_indices(mask) {
            self.values[dest].set(l, exact.get(l));
            self.errs[dest][l] = result_errs[l];
            self.written[dest] |= 1 << l;
        }
    }

    fn on_const_f(&mut self, _pc: usize, dest: Addr, value: f64, mask: LaneMask) {
        self.grow(dest);
        for l in lane_indices(mask) {
            self.seed(dest, l, value);
        }
    }

    fn on_const_i(&mut self, _pc: usize, dest: Addr, _value: i64, mask: LaneMask) {
        // The analysis clears the shadow: an integer store's consumer will
        // lazily shadow the client value, which the probe mirrors through
        // the written bit.
        self.grow(dest);
        for l in lane_indices(mask) {
            self.written[dest] &= !(1 << l);
        }
    }

    fn on_copy(&mut self, _pc: usize, dest: Addr, src: Addr, values: &[Value; W], mask: LaneMask) {
        self.grow(src.max(dest));
        for l in lane_indices(mask) {
            if !lane_active(self.written[src], l) {
                if let Value::F(v) = values[l] {
                    self.seed(src, l, v);
                } else {
                    self.written[dest] &= !(1 << l);
                    continue;
                }
            }
            let value = self.values[src].get(l);
            self.values[dest].set(l, value);
            self.errs[dest][l] = self.errs[src][l];
            self.written[dest] |= 1 << l;
        }
    }

    fn on_cast_to_int(
        &mut self,
        _pc: usize,
        dest: Addr,
        src: Addr,
        values: &[f64; W],
        _results: &[i64; W],
        mask: LaneMask,
    ) {
        // The divergence decision truncates `shadow.to_f64()`, whose
        // rounding was certified where the shadow was defined (leaves are
        // exact); nothing further to check. The destination shadow is
        // cleared, like the analysis.
        self.grow(src.max(dest));
        for l in lane_indices(mask) {
            self.ensure(src, l, values[l]);
            self.written[dest] &= !(1 << l);
        }
    }

    fn on_branch(
        &mut self,
        _pc: usize,
        _cmp: CmpOp,
        lhs: Addr,
        rhs: Addr,
        lhs_values: &[Value; W],
        rhs_values: &[Value; W],
        _taken: LaneMask,
        mask: LaneMask,
    ) {
        self.grow(lhs.max(rhs));
        for l in lane_indices(mask) {
            self.ensure(lhs, l, lhs_values[l].as_f64());
            self.ensure(rhs, l, rhs_values[l].as_f64());
            if !self.certified[l] {
                continue;
            }
            // The analysis compares the shadows with full `Real::compare`
            // semantics to detect divergence; certified separation (or joint
            // exactness) makes the `Ordering` agree across tiers for every
            // comparison operator.
            let lv = self.values[lhs].get(l);
            let rv = self.values[rhs].get(l);
            if !cert::compare_certified(&lv, self.errs[lhs][l], &rv, self.errs[rhs][l]) {
                self.certified[l] = false;
                self.fail_kinds[l].get_or_insert(CertFailKind::Branch);
            }
        }
    }

    fn on_output(&mut self, _pc: usize, src: Addr, values: &[f64; W], mask: LaneMask) {
        // Total error at the output rounds the shadow (`to_f64`), certified
        // at its definition; a never-shadowed output lazily becomes an exact
        // leaf in both tiers. Mirror the lazy creation so later statements
        // agree on what is shadowed.
        self.grow(src);
        for l in lane_indices(mask) {
            self.ensure(src, l, values[l]);
        }
    }
}

/// Runs the certify pass at compile-time width `W` and returns the per-input
/// verdicts, in input order.
///
/// Inputs whose run fails with a [`MachineError`] are marked uncertified —
/// the escalate pass reruns them in the `BigFloat` tier, which surfaces the
/// same error at the same (earliest-input) position as a plain sweep. The
/// failing lane keeps consuming its chunk: unlike the analysis sweeps, the
/// probe must classify *every* input.
fn certify_inputs<const W: usize>(
    machine: &Machine<'_>,
    inputs: &[Vec<f64>],
    params: &CertParams,
    detect_compensation: bool,
    #[cfg(feature = "fault-injection")] inject_base: Option<usize>,
) -> Vec<bool> {
    let lane_count = W.min(inputs.len()).max(1);
    let chunks = balanced_chunks(inputs, lane_count);
    let positions = chunks.first().map_or(0, |chunk| chunk.len());
    // Chunk `l` starts at input index `offsets[l]` (chunks are contiguous).
    let mut offsets = Vec::with_capacity(chunks.len());
    let mut start = 0;
    for chunk in &chunks {
        offsets.push(start);
        start += chunk.len();
    }
    let batch = machine.batched::<W>();
    let mut probe = CertifyProbe::<W>::new(*params, detect_compensation);
    let mut memory = BatchMemory::new();
    let mut certified = vec![false; inputs.len()];
    for position in 0..positions {
        let mut lane_inputs: [Option<&[f64]>; W] = [None; W];
        let mut any = false;
        for (l, chunk) in chunks.iter().enumerate() {
            if let Some(input) = chunk.get(position) {
                lane_inputs[l] = Some(input.as_slice());
                any = true;
            }
        }
        if !any {
            break;
        }
        let outcome = batch.run_batch(&lane_inputs, &mut probe, &mut memory);
        for (l, chunk) in chunks.iter().enumerate() {
            if chunk.get(position).is_some() {
                let index = offsets[l] + position;
                #[allow(unused_mut)]
                let mut verdict = probe.lane_certified(l) && outcome.errors[l].is_none();
                if telemetry::enabled() && !verdict {
                    // Escalation cause: the first failing certificate check,
                    // or a machine fault when every check passed.
                    if !probe.lane_certified(l) {
                        match probe.lane_fail_kind(l) {
                            Some(CertFailKind::Rounding) => {
                                telemetry::TIERED_ESCALATE_ROUNDING.incr()
                            }
                            Some(CertFailKind::Compensation) => {
                                telemetry::TIERED_ESCALATE_COMPENSATION.incr()
                            }
                            Some(CertFailKind::Branch) => telemetry::TIERED_ESCALATE_BRANCH.incr(),
                            None => {}
                        }
                    } else {
                        telemetry::TIERED_ESCALATE_MACHINE_FAULT.incr();
                    }
                }
                // An injected tier-escalation failure forces the input out of
                // the certified tier at verdict time, so the escalation tier
                // (where the same injection panics) is exercised. Armed only
                // by the fault-isolated driver.
                #[cfg(feature = "fault-injection")]
                if let Some(base) = inject_base {
                    use crate::faultinject::{self, InjectKind, InjectStage};
                    if faultinject::query(base + index, 0, InjectStage::TieredCertify)
                        == Some(InjectKind::TierEscalation)
                    {
                        if verdict {
                            telemetry::TIERED_ESCALATE_INJECTED.incr();
                        }
                        verdict = false;
                    }
                }
                certified[index] = verdict;
            }
        }
    }
    certified
}

/// [`certify_inputs`] dispatched to the compiled batch width. `inject_base`
/// (fault-injection builds only) arms injected certification verdicts with
/// the sweep-global index of `inputs[0]`; the plain drivers pass `None`.
pub(crate) fn certify_dispatch(
    machine: &Machine<'_>,
    width: usize,
    inputs: &[Vec<f64>],
    params: &CertParams,
    detect_compensation: bool,
    #[cfg(feature = "fault-injection")] inject_base: Option<usize>,
) -> Vec<bool> {
    macro_rules! go {
        ($w:literal) => {
            certify_inputs::<$w>(
                machine,
                inputs,
                params,
                detect_compensation,
                #[cfg(feature = "fault-injection")]
                inject_base,
            )
        };
    }
    match width {
        2 => go!(2),
        4 => go!(4),
        8 => go!(8),
        13 => go!(13),
        16 => go!(16),
        _ => go!(1),
    }
}

/// The armed tier 0 of a tiered sweep: the static prune mask plus the
/// declared input region it is valid for.
///
/// Tier 0 runs *before any input executes*: [`staticerr::analyze_program`]
/// abstractly interprets the compiled tape over
/// [`AnalysisConfig::input_ranges`] and certifies statements whose dynamic
/// error can never trip the thresholds for any in-region input. Certified
/// statements (filtered to the report-invisible subset by
/// [`staticerr::prune_mask`]) skip dynamic shadowing in **both** dynamic
/// tiers — the certificate bounds the exact value, not a particular shadow,
/// so it holds under `DoubleDouble` and `BigFloat` alike. The driver checks
/// every input against the declared region and sweeps out-of-region inputs
/// unpruned, so the bit-identity contract holds unconditionally even when
/// the declared ranges are wrong.
struct Tier0 {
    mask: Arc<staticerr::PruneMask>,
    ranges: Vec<(f64, f64)>,
}

/// Runs the static tier-0 pass when the configuration declares input
/// ranges. Returns `None` when disarmed (`input_ranges: None`), when the
/// declared ranges do not match the program's arity (fail closed: no
/// pruning), or when nothing prunable was certified.
fn arm_tier0(program: &Program, config: &AnalysisConfig) -> Option<Tier0> {
    let ranges = config.input_ranges.as_ref()?;
    if ranges.len() != program.arg_addrs.len() {
        return None;
    }
    let _span = telemetry::span(telemetry::Phase::Tier0Static);
    let params = staticerr::StaticParams {
        local_error_threshold: config.local_error_threshold,
        output_error_threshold: config.output_error_threshold,
        detect_compensation: config.detect_compensation,
    };
    let analysis = staticerr::analyze_program(program, ranges, &params);
    let mask = staticerr::prune_mask(program, &analysis);
    telemetry::TIER0_STATEMENTS_CERTIFIED.add(analysis.certified_computes as u64);
    telemetry::TIER0_STATEMENTS_PRUNED.add(mask.pruned_computes() as u64);
    if mask.is_empty() {
        return None;
    }
    Some(Tier0 {
        mask: Arc::new(mask),
        ranges: ranges.clone(),
    })
}

/// Whether an input vector lies inside the declared tier-0 region (NaN
/// coordinates are never in range).
fn input_in_region(input: &[f64], ranges: &[(f64, f64)]) -> bool {
    input.len() == ranges.len()
        && input
            .iter()
            .zip(ranges)
            .all(|(&x, &(lo, hi))| lo <= x && x <= hi)
}

/// One thread shard of the tiered sweep: certify, partition into contiguous
/// same-verdict groups, dispatch each group to its tier, fold the states in
/// input order.
fn tiered_sweep(
    machine: &Machine<'_>,
    width: usize,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
    params: Option<&CertParams>,
    tier0: Option<&Tier0>,
) -> Result<(AnalysisState, TierStats), MachineError> {
    let certified = match params {
        Some(params) => {
            let _certify_span = telemetry::span(telemetry::Phase::Certify);
            certify_dispatch(
                machine,
                width,
                inputs,
                params,
                config.detect_compensation,
                #[cfg(feature = "fault-injection")]
                None,
            )
        }
        // Precision gate: below the tier threshold everything escalates.
        None => {
            telemetry::TIERED_ESCALATE_PRECISION_GATE.add(inputs.len() as u64);
            vec![false; inputs.len()]
        }
    };
    let stats = TierStats {
        total_inputs: inputs.len(),
        certified_inputs: certified.iter().filter(|&&c| c).count(),
    };
    telemetry::TIERED_INPUTS_CERTIFIED.add(stats.certified_inputs as u64);
    telemetry::TIERED_INPUTS_ESCALATED.add(stats.escalated_inputs() as u64);
    // Tier 0 applies per input: only inputs inside the statically declared
    // region may use the prune mask. Out-of-region inputs sweep unpruned,
    // so a wrong `input_ranges` declaration costs throughput, never report
    // fidelity.
    let in_region: Vec<bool> = match tier0 {
        Some(t) => inputs
            .iter()
            .map(|input| input_in_region(input, &t.ranges))
            .collect(),
        None => vec![false; inputs.len()],
    };
    let mut state = AnalysisState::empty(config.clone());
    let mut start = 0;
    while start < inputs.len() {
        let verdict = certified[start];
        let region = in_region[start];
        let mut end = start + 1;
        while end < inputs.len() && certified[end] == verdict && in_region[end] == region {
            end += 1;
        }
        let group = &inputs[start..end];
        let prune = match tier0 {
            Some(t) if region => Some(&t.mask),
            _ => None,
        };
        // Groups are contiguous in input order and dispatched in order, so
        // stopping at the first failing group surfaces the earliest failing
        // input's error — failing inputs are always uncertified (machine
        // errors are tracer-independent), so the error reruns here.
        let swept = if verdict {
            let _tier_span = telemetry::span(telemetry::Phase::TierDoubleDouble);
            dispatch_sweep::<DoubleDouble>(machine, width, group, config, prune)?.into_state()
        } else {
            let _tier_span = telemetry::span(telemetry::Phase::TierBigFloat);
            dispatch_sweep::<BigFloat>(machine, width, group, config, prune)?.into_state()
        };
        state.merge(swept);
        start = end;
    }
    Ok((state, stats))
}

/// Runs the tiered adaptive-precision analysis and returns the report
/// together with the tier split.
///
/// Interchangeable with [`analyze`](crate::analysis::analyze) and the other
/// drivers: the report is bit-identical for every batch width and thread
/// count — certified inputs merely run in the cheaper `DoubleDouble` tier.
///
/// # Errors
///
/// Propagates [`MachineError`] like every driver: the error of the earliest
/// failing input is returned.
pub fn analyze_tiered_with_stats(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<(Report, TierStats), MachineError> {
    let config = config.normalize();
    let width = effective_batch_width(config.batch_width);
    let threads = config.effective_threads(inputs.len());
    let params = CertParams::new(config.shadow_precision);
    // Tier 0: one static pass over the tape, shared by every thread shard.
    let tier0 = arm_tier0(program, &config);
    let shared = Machine::new(program)
        .with_step_limit(config.step_limit)
        .with_deadline_millis(config.deadline_millis);
    if threads <= 1 || inputs.len() <= 1 {
        let (state, stats) = tiered_sweep(
            &shared,
            width,
            inputs,
            &config,
            params.as_ref(),
            tier0.as_ref(),
        )?;
        return Ok((state.report(), stats));
    }
    let shards: Vec<Result<(AnalysisState, TierStats), MachineError>> =
        std::thread::scope(|scope| {
            let config = &config;
            let params = params.as_ref();
            let tier0 = tier0.as_ref();
            let handles: Vec<_> = balanced_chunks(inputs, threads)
                .into_iter()
                .map(|chunk| {
                    let machine = shared.clone();
                    scope.spawn(move || tiered_sweep(&machine, width, chunk, config, params, tier0))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("tiered analysis shard panicked"))
                .collect()
        });
    let mut state = AnalysisState::empty(config.clone());
    let mut stats = TierStats::default();
    for shard in shards {
        let (shard_state, shard_stats) = shard?;
        state.merge(shard_state);
        stats.absorb(shard_stats);
    }
    Ok((state.report(), stats))
}

/// [`analyze_tiered_with_stats`] without the tier split.
///
/// # Errors
///
/// Propagates [`MachineError`]; the earliest failing input's error.
pub fn analyze_tiered(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Result<Report, MachineError> {
    analyze_tiered_with_stats(program, inputs, config).map(|(report, _)| report)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test assertions may unwrap freely

    use super::*;
    use crate::analysis::analyze;
    use fpcore::parse_core;
    use fpvm::compile_core;

    fn program(src: &str) -> Program {
        compile_core(&parse_core(src).unwrap(), Default::default()).unwrap()
    }

    fn assert_tiered_identical(
        p: &Program,
        inputs: &[Vec<f64>],
        config: &AnalysisConfig,
    ) -> TierStats {
        let serial = analyze(p, inputs, &config.clone().with_threads(1)).unwrap();
        let (tiered, stats) = analyze_tiered_with_stats(p, inputs, config).unwrap();
        assert_eq!(format!("{serial:?}"), format!("{tiered:?}"));
        assert_eq!(stats.total_inputs, inputs.len());
        stats
    }

    #[test]
    fn cancellation_sweep_is_identical_and_mostly_certified() {
        let p = program("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))");
        let inputs: Vec<Vec<f64>> = (0..30).map(|i| vec![10f64.powi(i)]).collect();
        let config = AnalysisConfig::default().with_threads(1);
        let stats = assert_tiered_identical(&p, &inputs, &config);
        // Small inputs certify; large ones cancel away most of the
        // DoubleDouble's 106 bits and legitimately escalate — the split
        // itself is what the tiered driver is for.
        assert!(stats.certified_inputs >= 10, "{stats:?}");
        assert!(stats.escalated_inputs() >= 10, "{stats:?}");
    }

    #[test]
    fn transcendental_sweep_is_identical_and_certifies() {
        let p = program("(FPCore (x) (/ (- (exp x) 1) (log (+ 1 (sin x)))))");
        let inputs: Vec<Vec<f64>> = (1..40).map(|i| vec![f64::from(i) * 0.11]).collect();
        let config = AnalysisConfig::default().with_threads(1);
        let stats = assert_tiered_identical(&p, &inputs, &config);
        assert!(stats.certified_inputs > 0, "{stats:?}");
    }

    #[test]
    fn specials_escalate_but_stay_identical() {
        // Division by an exact zero manufactures inf/NaN mid-run; the dd
        // shadow does not model IEEE special semantics, so those inputs must
        // fail certification — and the report must still match.
        let p = program("(FPCore (x) (/ 1 (- x x)))");
        let inputs: Vec<Vec<f64>> = (0..6).map(|i| vec![f64::from(i)]).collect();
        let config = AnalysisConfig::default().with_threads(1);
        let stats = assert_tiered_identical(&p, &inputs, &config);
        assert_eq!(stats.certified_inputs, 0, "{stats:?}");
    }

    #[test]
    fn compensation_decisions_are_certified_or_escalated() {
        // Fast2Sum: the compensation detector's pass-through equality tests
        // fire on every add/sub; mixed benign and cancelling inputs.
        let p = program("(FPCore (a b) (- b (- (- (+ a b) a) b)))");
        let mut inputs: Vec<Vec<f64>> = (1..20)
            .map(|i| vec![f64::from(i) * 1e9, 1.0 / f64::from(i)])
            .collect();
        inputs.push(vec![1.0, -1.0]);
        inputs.push(vec![1e300, -1e300]);
        let config = AnalysisConfig::default().with_threads(1);
        let stats = assert_tiered_identical(&p, &inputs, &config);
        assert!(stats.certified_inputs > 0, "{stats:?}");
    }

    #[test]
    fn precision_gate_escalates_everything() {
        let p = program("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))");
        let inputs: Vec<Vec<f64>> = (0..8).map(|i| vec![10f64.powi(i)]).collect();
        let config = AnalysisConfig {
            shadow_precision: 128,
            ..AnalysisConfig::default().with_threads(1)
        };
        let stats = assert_tiered_identical(&p, &inputs, &config);
        assert_eq!(stats.certified_inputs, 0, "below the tier threshold");
    }

    #[test]
    fn threads_and_widths_compose() {
        let p = program("(FPCore (n) (while (< i n) ((s 0 (+ s (/ 1 i))) (i 1 (+ i 1))) s))");
        let inputs: Vec<Vec<f64>> = (1..23).map(|i| vec![f64::from(i * 3)]).collect();
        let serial = analyze(&p, &inputs, &AnalysisConfig::default().with_threads(1)).unwrap();
        for (threads, width) in [(1, 1), (3, 4), (2, 13), (4, 16)] {
            let config = AnalysisConfig::default()
                .with_threads(threads)
                .with_batch_width(width);
            let (tiered, stats) = analyze_tiered_with_stats(&p, &inputs, &config).unwrap();
            assert_eq!(
                format!("{serial:?}"),
                format!("{tiered:?}"),
                "threads={threads} width={width}"
            );
            assert_eq!(stats.total_inputs, inputs.len());
        }
    }

    #[test]
    fn surfaces_the_earliest_input_error() {
        let p = program("(FPCore (n) (while (< t n) ((t 0 (+ t 0.125)) (c 0 (+ c 1))) c))");
        let inputs: Vec<Vec<f64>> = (1..=8).map(|n| vec![f64::from(n) * 100.0]).collect();
        let config = AnalysisConfig {
            step_limit: 10,
            ..AnalysisConfig::default().with_threads(1)
        };
        let serial_err = analyze(&p, &inputs, &config).unwrap_err();
        let tiered_err = analyze_tiered(&p, &inputs, &config).unwrap_err();
        assert_eq!(format!("{serial_err:?}"), format!("{tiered_err:?}"));
    }

    #[test]
    fn empty_sweep_matches_the_other_drivers() {
        let p = program("(FPCore (x) (+ x 1))");
        let config = AnalysisConfig::default();
        let serial = analyze(&p, &[], &config).unwrap();
        let (tiered, stats) = analyze_tiered_with_stats(&p, &[], &config).unwrap();
        assert_eq!(format!("{serial:?}"), format!("{tiered:?}"));
        assert_eq!(stats, TierStats::default());
    }

    #[test]
    fn tier0_prunes_and_stays_identical() {
        // Well-conditioned polynomial over a declared region: the static
        // pass certifies the whole dataflow, so tier 0 prunes shadow work
        // while the report must stay bit-identical to the unpruned serial
        // analysis.
        let p = program("(FPCore (x) (+ (* x x) (+ x 2)))");
        let inputs: Vec<Vec<f64>> = (0..24).map(|i| vec![1.0 + f64::from(i) * 0.5]).collect();
        for (threads, width) in [(1, 1), (1, 8), (3, 4)] {
            let config = AnalysisConfig::default()
                .with_threads(threads)
                .with_batch_width(width)
                .with_input_ranges(vec![(1.0, 16.0)]);
            let capture = telemetry::SweepCapture::begin(telemetry::TelemetryMode::On);
            let (tiered, _) = analyze_tiered_with_stats(&p, &inputs, &config).unwrap();
            let snap = capture.finish();
            let serial = analyze(&p, &inputs, &AnalysisConfig::default().with_threads(1)).unwrap();
            assert_eq!(
                format!("{serial:?}"),
                format!("{tiered:?}"),
                "threads={threads} width={width}"
            );
            assert!(
                snap.counter("tier0.statements_pruned") > 0,
                "static pass should prune this program: {snap:?}"
            );
            assert!(
                snap.counter("tier0.pruned_executions") > 0,
                "pruned statements should actually skip executions"
            );
        }
    }

    #[test]
    fn tier0_out_of_region_inputs_sweep_unpruned_and_identical() {
        // The declared region covers only part of the sweep: out-of-region
        // inputs (including one far outside, where the certificate would be
        // meaningless) must run unpruned and the merged report must still be
        // bit-identical.
        let p = program("(FPCore (x) (+ (* x x) (+ x 2)))");
        let mut inputs: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0 + f64::from(i)]).collect();
        inputs.push(vec![1e200]);
        inputs.push(vec![3.5]);
        inputs.push(vec![-50.0]);
        let config = AnalysisConfig::default()
            .with_threads(1)
            .with_input_ranges(vec![(1.0, 16.0)]);
        let serial = analyze(&p, &inputs, &AnalysisConfig::default().with_threads(1)).unwrap();
        let (tiered, _) = analyze_tiered_with_stats(&p, &inputs, &config).unwrap();
        assert_eq!(format!("{serial:?}"), format!("{tiered:?}"));
    }

    #[test]
    fn tier0_arity_mismatch_fails_closed() {
        let p = program("(FPCore (x y) (+ x y))");
        let inputs: Vec<Vec<f64>> = (0..6).map(|i| vec![f64::from(i), 2.0]).collect();
        // Wrong arity in the declared ranges: tier 0 must disarm, not prune.
        let config = AnalysisConfig::default()
            .with_threads(1)
            .with_input_ranges(vec![(0.0, 8.0)]);
        let serial = analyze(&p, &inputs, &AnalysisConfig::default().with_threads(1)).unwrap();
        let (tiered, _) = analyze_tiered_with_stats(&p, &inputs, &config).unwrap();
        assert_eq!(format!("{serial:?}"), format!("{tiered:?}"));
    }

    #[test]
    fn tier0_unstable_programs_are_never_pruned_into_silence() {
        // Catastrophic cancellation inside the declared region: the static
        // pass must not certify the cancelling subtraction, and the report
        // must keep flagging it.
        let p = program("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))");
        let inputs: Vec<Vec<f64>> = (0..24).map(|i| vec![10f64.powi(i)]).collect();
        let config = AnalysisConfig::default()
            .with_threads(1)
            .with_input_ranges(vec![(1.0, 1e24)]);
        let serial = analyze(&p, &inputs, &AnalysisConfig::default().with_threads(1)).unwrap();
        let (tiered, _) = analyze_tiered_with_stats(&p, &inputs, &config).unwrap();
        assert_eq!(format!("{serial:?}"), format!("{tiered:?}"));
        assert!(tiered.has_significant_error());
    }
}

//! Fault-isolated sweep drivers: per-input quarantine, budgets, and
//! degraded partial reports.
//!
//! The plain drivers ([`analyze`](crate::analysis::analyze),
//! [`analyze_parallel`](crate::analysis::analyze_parallel),
//! [`analyze_batched`](crate::batched::analyze_batched),
//! [`analyze_tiered`](crate::tiered::analyze_tiered)) abort the whole sweep
//! on the first [`MachineError`] — correct for small curated suites, but one
//! pathological input (a runaway loop hitting the step budget, a trace that
//! outgrows memory, a crashing shadow op) should not cost the results of
//! the other ten thousand. The `*_isolated` drivers in this module instead
//! *quarantine* the offending input and finish the sweep:
//!
//! * Every driver always returns a [`Report`]. Failed inputs appear in
//!   [`Report::quarantined`], in input order, each carrying the input's
//!   sweep-global index, the deciding fault, and the pipeline stage that
//!   decided it.
//! * The degraded report is **bit-identical** to analyzing the surviving
//!   inputs alone: a faulted run's partial records never leak into the
//!   report. This falls out of the merge laws the parallel/batched drivers
//!   are built on — contiguous chunks of a sweep merge to the same result
//!   as one continuous sweep — so the engine can discard fault-contaminated
//!   state and rebuild from clean per-chunk states.
//! * Quarantine lists are deterministic across thread counts and batch
//!   widths for every per-input-deterministic fault (step budgets,
//!   trace-memory budgets, injected faults). Wall-clock deadlines
//!   ([`crate::AnalysisConfig::deadline_millis`]) are inherently
//!   load-dependent; the drivers quarantine deadline victims all the same,
//!   but reproducible sweeps should express budgets in steps or nodes.
//!
//! # How isolation works
//!
//! Machine faults are *per-input deterministic* here: the serial analysis
//! clears its expression interner per run, so step budgets, trace budgets
//! and injected faults depend only on the input — not on which other inputs
//! ran before it. The serial engine exploits this with an *optimistic
//! collect*: it sweeps all live inputs once, records every machine fault as
//! a final verdict, then — only if something faulted — rebuilds the
//! analysis state from scratch over the survivors. The fault-free fast path
//! is exactly one plain sweep plus a per-run `catch_unwind` frame.
//!
//! The batched engine needs one more mechanism: a lane group shares its
//! expression interner, so a trace-budget fault is attributed to *all*
//! active lanes of the group, and a panic in a lane-vectorized shadow op
//! cannot be attributed to any single lane. Fault candidates from a batched
//! pass are therefore re-tried on a *serial probe ladder* — a fresh
//! single-input serial run (then, for the tiered driver's certified tier, a
//! `BigFloat`-tier probe) whose verdict is canonical because it is
//! per-input deterministic. A candidate whose probe succeeds is *healed*:
//! its probe state is cached and merged back in input order, and the input
//! is demoted out of batched execution so the group fault cannot recur. A
//! candidate that fails every rung is quarantined with the last rung's
//! fault and stage. Probing is what makes quarantine lists independent of
//! the batch width the group fault happened to occur at.
//!
//! Panics unwind out of the *analysis observer* (the machine itself never
//! panics on user input): the serial engines catch them per input, the
//! batched engine catches them per pass and probes every input of the pass.
//! Either way only the offending input is quarantined — the shard or lane
//! group is rebuilt without it.

// Quarantine semantics depend on faults being *typed*: a stray `.unwrap()`
// in driver code turns a recoverable per-input fault into a sweep-wide
// panic, so bare unwraps are denied here (tests opt back in locally).
#![deny(clippy::unwrap_used)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::analysis::{balanced_chunks, AnalysisState, Herbgrind};
use crate::batched::{dispatch_sweep_collect, effective_batch_width};
use crate::config::AnalysisConfig;
use crate::report::Report;
use crate::tiered::{certify_dispatch, TierStats};
use fpvm::{Machine, MachineError, Program};
use shadowreal::cert::CertParams;
use shadowreal::{BatchReal, BigFloat, DoubleDouble, Real};

#[cfg(feature = "fault-injection")]
use crate::faultinject::InjectStage;

/// The pipeline stage whose verdict quarantined an input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepStage {
    /// The serial driver's sweep loop.
    Serial,
    /// A thread shard of the parallel driver.
    ParallelShard,
    /// The batched driver (lane-group pass or its serial retry probe — the
    /// probe is part of the same pipeline stage).
    BatchedLane,
    /// The tiered driver's certified `DoubleDouble` tier.
    TieredDoubleDouble,
    /// The tiered driver's `BigFloat` tier — the last rung of the tiered
    /// retry ladder, so tiered quarantines report this stage.
    TieredBigFloat,
}

impl std::fmt::Display for SweepStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let label = match self {
            SweepStage::Serial => "serial sweep",
            SweepStage::ParallelShard => "parallel shard",
            SweepStage::BatchedLane => "batched lane",
            SweepStage::TieredDoubleDouble => "tiered double-double tier",
            SweepStage::TieredBigFloat => "tiered bigfloat tier",
        };
        f.write_str(label)
    }
}

/// The fault that quarantined an input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SweepFault {
    /// The run failed with a machine error (budget exhaustion, arity
    /// mismatch, runaway program counter).
    Machine(MachineError),
    /// The analysis observer panicked; the payload's message, when it was a
    /// string.
    Panic(String),
}

impl std::fmt::Display for SweepFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepFault::Machine(error) => write!(f, "{error}"),
            SweepFault::Panic(message) => write!(f, "analysis panicked: {message}"),
        }
    }
}

/// One quarantined input of a fault-isolated sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedInput {
    /// Sweep-global index of the input (position in the `inputs` slice).
    pub input_index: usize,
    /// The pipeline stage whose verdict decided the quarantine.
    pub stage: SweepStage,
    /// The deciding fault.
    pub error: SweepFault,
}

impl std::fmt::Display for QuarantinedInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "input {} ({}): {}",
            self.input_index, self.stage, self.error
        )
    }
}

/// Renders a panic payload's message, when it carried one.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A contiguous chunk's survivor state plus its quarantine records.
struct ChunkOutcome {
    state: AnalysisState,
    quarantined: Vec<QuarantinedInput>,
}

/// Runs the serial fault-isolated engine over one contiguous input chunk
/// whose first input has sweep-global index `index_base`.
///
/// Optimistic collect: one accumulating pass over the live inputs records
/// every machine fault as a final verdict (faults are per-input
/// deterministic — the interner is per-run). A panic stops the pass, since
/// a half-observed run leaves the tracer in an untrusted state. If anything
/// faulted, the contaminated state is discarded and the pass rebuilt over
/// the survivors; each rebuild quarantines at least one more input, so the
/// loop runs at most `inputs.len() + 1` passes and exactly one pass when
/// nothing faults.
fn serial_engine<R: Real>(
    machine: &Machine<'_>,
    inputs: &[Vec<f64>],
    index_base: usize,
    config: &AnalysisConfig,
    stage: SweepStage,
    #[cfg(feature = "fault-injection")] inject_stage: InjectStage,
) -> ChunkOutcome {
    let mut quarantined: Vec<QuarantinedInput> = Vec::new();
    loop {
        let mut analysis = Herbgrind::<R>::new(config.clone());
        let mut memory = Vec::new();
        let mut faults: Vec<QuarantinedInput> = Vec::new();
        for (offset, input) in inputs.iter().enumerate() {
            let global = index_base + offset;
            if quarantined.iter().any(|q| q.input_index == global) {
                continue;
            }
            #[cfg(feature = "fault-injection")]
            analysis.arm_injection(global, inject_stage);
            let run = catch_unwind(AssertUnwindSafe(|| {
                machine.run_traced_reusing(input, &mut analysis, &mut memory)
            }));
            match run {
                Ok(Ok(_)) => {}
                Ok(Err(error)) => faults.push(QuarantinedInput {
                    input_index: global,
                    stage,
                    error: SweepFault::Machine(error),
                }),
                Err(payload) => {
                    faults.push(QuarantinedInput {
                        input_index: global,
                        stage,
                        error: SweepFault::Panic(panic_message(payload)),
                    });
                    break;
                }
            }
        }
        if faults.is_empty() {
            quarantined.sort_by_key(|q| q.input_index);
            return ChunkOutcome {
                state: analysis.into_state(),
                quarantined,
            };
        }
        quarantined.extend(faults);
    }
}

/// Which scalar shadow a retry-ladder probe runs with.
#[derive(Clone, Copy)]
enum ProbeShadow {
    /// The [`DoubleDouble`] shadow (tiered certified tier).
    DoubleDouble,
    /// The [`BigFloat`] shadow.
    BigFloat,
}

/// One rung of the batched engine's serial retry ladder.
#[derive(Clone, Copy)]
struct LadderRung {
    shadow: ProbeShadow,
    stage: SweepStage,
    #[cfg(feature = "fault-injection")]
    inject: InjectStage,
}

/// A fresh single-input serial run: the canonical per-input verdict for a
/// batched fault candidate, and (on success) the cached state that replaces
/// the input's batched execution.
fn probe_with<R: Real>(
    machine: &Machine<'_>,
    input: &[f64],
    #[cfg(feature = "fault-injection")] global: usize,
    #[cfg(feature = "fault-injection")] inject_stage: InjectStage,
    config: &AnalysisConfig,
) -> Result<AnalysisState, SweepFault> {
    let mut analysis = Herbgrind::<R>::new(config.clone());
    #[cfg(feature = "fault-injection")]
    analysis.arm_injection(global, inject_stage);
    let mut memory = Vec::new();
    let run = catch_unwind(AssertUnwindSafe(|| {
        machine.run_traced_reusing(input, &mut analysis, &mut memory)
    }));
    match run {
        Ok(Ok(_)) => Ok(analysis.into_state()),
        Ok(Err(error)) => Err(SweepFault::Machine(error)),
        Err(payload) => Err(SweepFault::Panic(panic_message(payload))),
    }
}

/// Walks a fault candidate down the serial retry ladder. The first rung
/// that runs clean heals the input (its state is merged back in input
/// order); if every rung fails, the input is quarantined with the *last*
/// rung's fault and stage — the deciding rung — which keeps the record
/// independent of the batch width or thread count the original fault
/// surfaced at.
fn run_ladder(
    machine: &Machine<'_>,
    input: &[f64],
    global: usize,
    config: &AnalysisConfig,
    rungs: &[LadderRung],
) -> Result<AnalysisState, QuarantinedInput> {
    let _ladder_span = telemetry::span(telemetry::Phase::Ladder);
    let mut last: Option<QuarantinedInput> = None;
    for rung in rungs {
        telemetry::QUARANTINE_LADDER_ATTEMPTS.incr();
        let probed = match rung.shadow {
            ProbeShadow::DoubleDouble => probe_with::<DoubleDouble>(
                machine,
                input,
                #[cfg(feature = "fault-injection")]
                global,
                #[cfg(feature = "fault-injection")]
                rung.inject,
                config,
            ),
            ProbeShadow::BigFloat => probe_with::<BigFloat>(
                machine,
                input,
                #[cfg(feature = "fault-injection")]
                global,
                #[cfg(feature = "fault-injection")]
                rung.inject,
                config,
            ),
        };
        match probed {
            Ok(state) => {
                telemetry::QUARANTINE_LADDER_HEALS.incr();
                return Ok(state);
            }
            Err(error) => {
                last = Some(QuarantinedInput {
                    input_index: global,
                    stage: rung.stage,
                    error,
                });
            }
        }
    }
    Err(last.unwrap_or(QuarantinedInput {
        input_index: global,
        stage: SweepStage::Serial,
        error: SweepFault::Panic("empty retry ladder".to_string()),
    }))
}

/// How each input of a batched chunk is currently executed.
enum Mode {
    /// Runs in the lane-parallel batched pass (the fast path).
    Batched,
    /// Healed by a ladder probe: the cached single-input state replaces the
    /// input's batched execution, merged back in input order.
    Probed(Option<AnalysisState>),
    /// Quarantined; excluded from the sweep.
    Quarantined(Option<QuarantinedInput>),
}

/// Runs the batched fault-isolated engine over one contiguous input chunk
/// whose first input has sweep-global index `index_base`.
///
/// Each iteration partitions the chunk's live batched-mode inputs into
/// maximal contiguous runs, executes each run with the fault-collecting
/// batched sweep, and resolves every fault candidate through the serial
/// retry ladder: healed candidates demote to [`Mode::Probed`] (so a
/// group-attributed fault cannot recur), failed candidates to
/// [`Mode::Quarantined`]. A panic in a pass cannot be attributed to a lane,
/// so every input of the panicking run becomes a candidate and the probes
/// sort the guilty from the innocent. Every iteration with candidates
/// resolves at least one input, bounding the loop; a fault-free chunk costs
/// exactly one batched sweep.
fn batched_engine<R: BatchReal>(
    machine: &Machine<'_>,
    width: usize,
    inputs: &[Vec<f64>],
    index_base: usize,
    config: &AnalysisConfig,
    rungs: &[LadderRung],
    #[cfg(feature = "fault-injection")] pass_stage: InjectStage,
) -> ChunkOutcome {
    let mut modes: Vec<Mode> = (0..inputs.len()).map(|_| Mode::Batched).collect();
    loop {
        // Maximal contiguous runs of batched-mode inputs, by local offset.
        let mut segments: Vec<(usize, usize)> = Vec::new();
        let mut cursor = 0;
        while cursor < inputs.len() {
            if matches!(modes[cursor], Mode::Batched) {
                let start = cursor;
                while cursor < inputs.len() && matches!(modes[cursor], Mode::Batched) {
                    cursor += 1;
                }
                segments.push((start, cursor));
            } else {
                cursor += 1;
            }
        }
        let mut states: Vec<AnalysisState> = Vec::new();
        let mut candidates: Vec<usize> = Vec::new();
        for &(start, end) in &segments {
            let segment = &inputs[start..end];
            let swept = catch_unwind(AssertUnwindSafe(|| {
                dispatch_sweep_collect::<R>(
                    machine,
                    width,
                    segment,
                    index_base + start,
                    config,
                    #[cfg(feature = "fault-injection")]
                    pass_stage,
                )
            }));
            match swept {
                Ok((Some(analysis), _)) => states.push(analysis.into_state()),
                Ok((None, faults)) => {
                    candidates.extend(faults.into_iter().map(|(global, _)| global));
                }
                // The pass panicked: no lane can be blamed, so every input
                // of the run is probed and the ladder decides.
                Err(_) => candidates.extend((start..end).map(|offset| index_base + offset)),
            }
        }
        if candidates.is_empty() {
            // Assemble: merge segment states and cached probe states in
            // input order — contiguous chunks, so the merge laws make the
            // result bit-identical to one continuous sweep of the
            // survivors.
            let mut state = AnalysisState::empty(config.clone());
            let mut quarantined = Vec::new();
            let mut next_segment = states.into_iter();
            let mut position = 0;
            while position < inputs.len() {
                match &mut modes[position] {
                    Mode::Batched => {
                        if let Some(segment_state) = next_segment.next() {
                            state.merge(segment_state);
                        }
                        while position < inputs.len() && matches!(modes[position], Mode::Batched) {
                            position += 1;
                        }
                    }
                    Mode::Probed(cached) => {
                        if let Some(cached) = cached.take() {
                            state.merge(cached);
                        }
                        position += 1;
                    }
                    Mode::Quarantined(record) => {
                        if let Some(record) = record.take() {
                            quarantined.push(record);
                        }
                        position += 1;
                    }
                }
            }
            quarantined.sort_by_key(|q| q.input_index);
            return ChunkOutcome { state, quarantined };
        }
        candidates.sort_unstable();
        candidates.dedup();
        for global in candidates {
            let offset = global - index_base;
            match run_ladder(machine, &inputs[offset], global, config, rungs) {
                Ok(state) => modes[offset] = Mode::Probed(Some(state)),
                Err(record) => modes[offset] = Mode::Quarantined(Some(record)),
            }
        }
    }
}

/// The telemetry fault-table cell for one quarantine record: the final
/// records are counted (not intermediate candidates), so the stage × kind
/// table is deterministic across thread counts and batch widths, exactly
/// like the quarantine list itself.
fn record_quarantine_telemetry(record: &QuarantinedInput) {
    let stage = match record.stage {
        SweepStage::Serial => telemetry::FaultStage::Serial,
        SweepStage::ParallelShard => telemetry::FaultStage::ParallelShard,
        SweepStage::BatchedLane => telemetry::FaultStage::BatchedLane,
        SweepStage::TieredDoubleDouble => telemetry::FaultStage::TieredDoubleDouble,
        SweepStage::TieredBigFloat => telemetry::FaultStage::TieredBigFloat,
    };
    let kind = match &record.error {
        SweepFault::Panic(_) => telemetry::FaultKind::Panic,
        SweepFault::Machine(MachineError::StepBudgetExceeded { .. }) => {
            telemetry::FaultKind::StepBudget
        }
        SweepFault::Machine(MachineError::DeadlineExceeded { .. }) => {
            telemetry::FaultKind::Deadline
        }
        SweepFault::Machine(MachineError::TraceBudgetExceeded { .. }) => {
            telemetry::FaultKind::TraceBudget
        }
        SweepFault::Machine(_) => telemetry::FaultKind::Other,
    };
    telemetry::record_fault(stage, kind);
}

/// Folds per-chunk outcomes (in input order) into the final degraded
/// report.
fn assemble(config: &AnalysisConfig, outcomes: Vec<ChunkOutcome>) -> Report {
    let _report_span = telemetry::span(telemetry::Phase::Report);
    let mut state = AnalysisState::empty(config.clone());
    let mut quarantined = Vec::new();
    for outcome in outcomes {
        state.merge(outcome.state);
        quarantined.extend(outcome.quarantined);
    }
    quarantined.sort_by_key(|q| q.input_index);
    if telemetry::enabled() {
        telemetry::QUARANTINE_INPUTS.add(quarantined.len() as u64);
        for record in &quarantined {
            record_quarantine_telemetry(record);
        }
    }
    let mut report = state.report();
    report.quarantined = quarantined;
    report
}

/// Contiguous balanced chunks plus each chunk's starting global index.
fn chunks_with_offsets(inputs: &[Vec<f64>], parts: usize) -> Vec<(usize, &[Vec<f64>])> {
    let chunks = balanced_chunks(inputs, parts);
    let mut out = Vec::with_capacity(chunks.len());
    let mut start = 0;
    for chunk in chunks {
        out.push((start, chunk));
        start += chunk.len();
    }
    out
}

/// Fault-isolated serial sweep with the default [`BigFloat`] shadow: the
/// isolating counterpart of [`analyze`](crate::analysis::analyze). Always
/// returns a report; failed inputs are quarantined
/// ([`Report::quarantined`]) and the report body covers exactly the
/// survivors, bit-identical to analyzing them alone.
pub fn analyze_isolated(program: &Program, inputs: &[Vec<f64>], config: &AnalysisConfig) -> Report {
    analyze_isolated_with_shadow::<BigFloat>(program, inputs, config)
}

/// [`analyze_isolated`] with an explicit shadow-real type.
pub fn analyze_isolated_with_shadow<R: Real>(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Report {
    let machine = Machine::new(program)
        .with_step_limit(config.step_limit)
        .with_deadline_millis(config.deadline_millis);
    let outcome = serial_engine::<R>(
        &machine,
        inputs,
        0,
        config,
        SweepStage::Serial,
        #[cfg(feature = "fault-injection")]
        InjectStage::Serial,
    );
    assemble(config, vec![outcome])
}

/// Fault-isolated thread-sharded sweep: the isolating counterpart of
/// [`analyze_parallel`](crate::analysis::analyze_parallel). Each shard runs
/// the serial isolation engine over its contiguous chunk, so a fault (or a
/// panicking shadow op) quarantines only its own input while the shard
/// rebuilds and finishes; shard states and quarantine lists merge in input
/// order. Quarantine lists and the report are bit-identical for every
/// thread count.
pub fn analyze_parallel_isolated(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Report {
    let threads = config.effective_threads(inputs.len());
    let shared = Machine::new(program)
        .with_step_limit(config.step_limit)
        .with_deadline_millis(config.deadline_millis);
    let run_shard = |(start, chunk): (usize, &[Vec<f64>])| {
        serial_engine::<BigFloat>(
            &shared,
            chunk,
            start,
            config,
            SweepStage::ParallelShard,
            #[cfg(feature = "fault-injection")]
            InjectStage::Parallel,
        )
    };
    if threads <= 1 || inputs.len() <= 1 {
        let outcome = run_shard((0, inputs));
        return assemble(config, vec![outcome]);
    }
    let outcomes: Vec<ChunkOutcome> = std::thread::scope(|scope| {
        let run = &run_shard;
        let handles: Vec<_> = chunks_with_offsets(inputs, threads)
            .into_iter()
            .map(|(start, chunk)| (start, chunk.len(), scope.spawn(move || run((start, chunk)))))
            .collect();
        handles
            .into_iter()
            .map(|(start, len, handle)| {
                handle.join().unwrap_or_else(|payload| {
                    // The engine catches panics per input, so a shard thread
                    // dying is out-of-model (e.g. a panic while panicking).
                    // Fail closed: quarantine the whole chunk rather than
                    // lose the sweep.
                    let message = panic_message(payload);
                    ChunkOutcome {
                        state: AnalysisState::empty(config.clone()),
                        quarantined: (start..start + len)
                            .map(|input_index| QuarantinedInput {
                                input_index,
                                stage: SweepStage::ParallelShard,
                                error: SweepFault::Panic(message.clone()),
                            })
                            .collect(),
                    }
                })
            })
            .collect()
    });
    assemble(config, outcomes)
}

/// Fault-isolated batched sweep: the isolating counterpart of
/// [`analyze_batched`](crate::batched::analyze_batched). Lane-group faults
/// and pass panics are re-tried on a serial probe per input — the probe's
/// per-input-deterministic verdict decides the quarantine, which is what
/// keeps quarantine lists identical across batch widths and thread counts.
pub fn analyze_batched_isolated(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Report {
    let width = effective_batch_width(config.batch_width);
    let threads = config.effective_threads(inputs.len());
    let shared = Machine::new(program)
        .with_step_limit(config.step_limit)
        .with_deadline_millis(config.deadline_millis);
    let rungs = [LadderRung {
        shadow: ProbeShadow::BigFloat,
        stage: SweepStage::BatchedLane,
        #[cfg(feature = "fault-injection")]
        inject: InjectStage::Batched,
    }];
    let run_shard = |(start, chunk): (usize, &[Vec<f64>])| {
        batched_engine::<BigFloat>(
            &shared,
            width,
            chunk,
            start,
            config,
            &rungs,
            #[cfg(feature = "fault-injection")]
            InjectStage::Batched,
        )
    };
    if threads <= 1 || inputs.len() <= 1 {
        let outcome = run_shard((0, inputs));
        return assemble(config, vec![outcome]);
    }
    let outcomes: Vec<ChunkOutcome> = std::thread::scope(|scope| {
        let run = &run_shard;
        let handles: Vec<_> = chunks_with_offsets(inputs, threads)
            .into_iter()
            .map(|(start, chunk)| (start, chunk.len(), scope.spawn(move || run((start, chunk)))))
            .collect();
        handles
            .into_iter()
            .map(|(start, len, handle)| {
                handle.join().unwrap_or_else(|payload| {
                    let message = panic_message(payload);
                    ChunkOutcome {
                        state: AnalysisState::empty(config.clone()),
                        quarantined: (start..start + len)
                            .map(|input_index| QuarantinedInput {
                                input_index,
                                stage: SweepStage::BatchedLane,
                                error: SweepFault::Panic(message.clone()),
                            })
                            .collect(),
                    }
                })
            })
            .collect()
    });
    assemble(config, outcomes)
}

/// Fault-isolated tiered adaptive-precision sweep: the isolating
/// counterpart of [`analyze_tiered`](crate::tiered::analyze_tiered).
///
/// The certification probe is already fault-tolerant (a failed or injected
/// run is simply uncertified); a *panicking* certify pass fails closed by
/// escalating every input to the `BigFloat` tier. Certified groups run the
/// batched isolation engine on the `DoubleDouble` shadow with a two-rung
/// retry ladder — a serial `DoubleDouble` probe, then a serial `BigFloat`
/// probe (sound for certified inputs, whose `DoubleDouble` and `BigFloat`
/// records agree by construction) — so an input is quarantined only when
/// even the reference tier fails it. Uncertified groups run the engine on
/// the `BigFloat` shadow directly.
pub fn analyze_tiered_isolated(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Report {
    analyze_tiered_isolated_with_stats(program, inputs, config).0
}

/// [`analyze_tiered_isolated`] with the tier split: how many inputs the
/// probe certified into the cheap `DoubleDouble` tier versus escalated to
/// `BigFloat` — the same [`TierStats`] the plain driver exposes through
/// [`analyze_tiered_with_stats`](crate::tiered::analyze_tiered_with_stats).
pub fn analyze_tiered_isolated_with_stats(
    program: &Program,
    inputs: &[Vec<f64>],
    config: &AnalysisConfig,
) -> (Report, TierStats) {
    let config = config.normalize();
    let width = effective_batch_width(config.batch_width);
    let machine = Machine::new(program)
        .with_step_limit(config.step_limit)
        .with_deadline_millis(config.deadline_millis);
    let params = CertParams::new(config.shadow_precision);
    let certified: Vec<bool> = match params {
        Some(params) => {
            let _certify_span = telemetry::span(telemetry::Phase::Certify);
            catch_unwind(AssertUnwindSafe(|| {
                certify_dispatch(
                    &machine,
                    width,
                    inputs,
                    &params,
                    config.detect_compensation,
                    #[cfg(feature = "fault-injection")]
                    Some(0),
                )
            }))
            .unwrap_or_else(|_| vec![false; inputs.len()])
        }
        // Precision gate: below the tier threshold everything escalates.
        None => {
            telemetry::TIERED_ESCALATE_PRECISION_GATE.add(inputs.len() as u64);
            vec![false; inputs.len()]
        }
    };
    let stats = TierStats {
        total_inputs: inputs.len(),
        certified_inputs: certified.iter().filter(|&&c| c).count(),
    };
    telemetry::TIERED_INPUTS_CERTIFIED.add(stats.certified_inputs as u64);
    telemetry::TIERED_INPUTS_ESCALATED.add(stats.escalated_inputs() as u64);
    let dd_rungs = [
        LadderRung {
            shadow: ProbeShadow::DoubleDouble,
            stage: SweepStage::TieredDoubleDouble,
            #[cfg(feature = "fault-injection")]
            inject: InjectStage::TieredDoubleDouble,
        },
        LadderRung {
            shadow: ProbeShadow::BigFloat,
            stage: SweepStage::TieredBigFloat,
            #[cfg(feature = "fault-injection")]
            inject: InjectStage::TieredBigFloat,
        },
    ];
    let big_rungs = [LadderRung {
        shadow: ProbeShadow::BigFloat,
        stage: SweepStage::TieredBigFloat,
        #[cfg(feature = "fault-injection")]
        inject: InjectStage::TieredBigFloat,
    }];
    let mut outcomes = Vec::new();
    let mut start = 0;
    while start < inputs.len() {
        let verdict = certified[start];
        let mut end = start + 1;
        while end < inputs.len() && certified[end] == verdict {
            end += 1;
        }
        let group = &inputs[start..end];
        let outcome = if verdict {
            let _tier_span = telemetry::span(telemetry::Phase::TierDoubleDouble);
            batched_engine::<DoubleDouble>(
                &machine,
                width,
                group,
                start,
                &config,
                &dd_rungs,
                #[cfg(feature = "fault-injection")]
                InjectStage::TieredDoubleDouble,
            )
        } else {
            let _tier_span = telemetry::span(telemetry::Phase::TierBigFloat);
            batched_engine::<BigFloat>(
                &machine,
                width,
                group,
                start,
                &config,
                &big_rungs,
                #[cfg(feature = "fault-injection")]
                InjectStage::TieredBigFloat,
            )
        };
        outcomes.push(outcome);
        start = end;
    }
    (assemble(&config, outcomes), stats)
}

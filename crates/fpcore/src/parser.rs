//! An s-expression parser for FPCore.
//!
//! The parser accepts the subset of the FPCore 1.x standard that FPBench's
//! general-purpose suite uses: numeric and rational literals, constants,
//! operator applications, `let`/`let*`, `while`/`while*`, `if`, boolean
//! operators, property annotations (`:name`, `:pre`, ...), and the `!`
//! precision annotation (which is recorded and otherwise ignored, since the
//! abstract machine is double-precision only).

use crate::ast::{CmpOp, Constant, Expr, FPCore};
use shadowreal::RealOp;
use std::collections::BTreeMap;
use std::fmt;

/// An error produced while parsing FPCore text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset in the input where the problem was noticed.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>, offset: usize) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
        offset,
    })
}

// ----- tokenization -----

#[derive(Clone, Debug, PartialEq)]
enum Token {
    Open,
    Close,
    Atom(String),
    Str(String),
}

fn tokenize(input: &str) -> Result<Vec<(Token, usize)>, ParseError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '(' | '[' => {
                tokens.push((Token::Open, i));
                i += 1;
            }
            ')' | ']' => {
                tokens.push((Token::Close, i));
                i += 1;
            }
            ';' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                while i < bytes.len() && bytes[i] != '"' {
                    s.push(bytes[i]);
                    i += 1;
                }
                if i >= bytes.len() {
                    return err("unterminated string literal", start);
                }
                i += 1;
                tokens.push((Token::Str(s), start));
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            _ => {
                let start = i;
                let mut s = String::new();
                while i < bytes.len()
                    && !bytes[i].is_whitespace()
                    && !matches!(bytes[i], '(' | ')' | '[' | ']' | ';' | '"')
                {
                    s.push(bytes[i]);
                    i += 1;
                }
                tokens.push((Token::Atom(s), start));
            }
        }
    }
    Ok(tokens)
}

// ----- s-expressions -----

#[derive(Clone, Debug, PartialEq)]
enum SExpr {
    Atom(String, usize),
    Str(String, usize),
    List(Vec<SExpr>, usize),
}

impl SExpr {
    fn offset(&self) -> usize {
        match self {
            SExpr::Atom(_, o) | SExpr::Str(_, o) | SExpr::List(_, o) => *o,
        }
    }
}

fn parse_sexprs(tokens: &[(Token, usize)]) -> Result<Vec<SExpr>, ParseError> {
    let mut stack: Vec<(Vec<SExpr>, usize)> = Vec::new();
    let mut top: Vec<SExpr> = Vec::new();
    for (tok, off) in tokens {
        match tok {
            Token::Open => {
                stack.push((std::mem::take(&mut top), *off));
            }
            Token::Close => match stack.pop() {
                Some((mut parent, open_off)) => {
                    let list = SExpr::List(std::mem::take(&mut top), open_off);
                    parent.push(list);
                    top = parent;
                }
                None => return err("unbalanced ')'", *off),
            },
            Token::Atom(s) => top.push(SExpr::Atom(s.clone(), *off)),
            Token::Str(s) => top.push(SExpr::Str(s.clone(), *off)),
        }
    }
    if let Some((_, off)) = stack.last() {
        return err("unbalanced '('", *off);
    }
    Ok(top)
}

// ----- lowering to FPCore -----

fn op_from_name(name: &str) -> Option<RealOp> {
    Some(match name {
        "+" => RealOp::Add,
        "-" => RealOp::Sub,
        "*" => RealOp::Mul,
        "/" => RealOp::Div,
        "neg" => RealOp::Neg,
        "fabs" | "abs" => RealOp::Fabs,
        "sqrt" => RealOp::Sqrt,
        "cbrt" => RealOp::Cbrt,
        "fma" => RealOp::Fma,
        "exp" => RealOp::Exp,
        "exp2" => RealOp::Exp2,
        "expm1" => RealOp::Expm1,
        "log" | "ln" => RealOp::Log,
        "log2" => RealOp::Log2,
        "log10" => RealOp::Log10,
        "log1p" => RealOp::Log1p,
        "pow" => RealOp::Pow,
        "sin" => RealOp::Sin,
        "cos" => RealOp::Cos,
        "tan" => RealOp::Tan,
        "asin" => RealOp::Asin,
        "acos" => RealOp::Acos,
        "atan" => RealOp::Atan,
        "atan2" => RealOp::Atan2,
        "sinh" => RealOp::Sinh,
        "cosh" => RealOp::Cosh,
        "tanh" => RealOp::Tanh,
        "asinh" => RealOp::Asinh,
        "acosh" => RealOp::Acosh,
        "atanh" => RealOp::Atanh,
        "hypot" => RealOp::Hypot,
        "fmin" => RealOp::Fmin,
        "fmax" => RealOp::Fmax,
        "fdim" => RealOp::Fdim,
        "fmod" => RealOp::Fmod,
        "floor" => RealOp::Floor,
        "ceil" => RealOp::Ceil,
        "trunc" => RealOp::Trunc,
        "round" => RealOp::Round,
        "copysign" => RealOp::Copysign,
        _ => return None,
    })
}

fn cmp_from_name(name: &str) -> Option<CmpOp> {
    Some(match name {
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        "==" => CmpOp::Eq,
        "!=" => CmpOp::Ne,
        _ => return None,
    })
}

fn parse_number(atom: &str) -> Option<f64> {
    if let Ok(v) = atom.parse::<f64>() {
        return Some(v);
    }
    // Rational literal such as 1/100 or -355/113.
    if let Some((num, den)) = atom.split_once('/') {
        if let (Ok(n), Ok(d)) = (num.parse::<f64>(), den.parse::<f64>()) {
            if d != 0.0 && !num.contains('.') && !den.contains('.') {
                return Some(n / d);
            }
        }
    }
    None
}

fn lower_expr(sexpr: &SExpr) -> Result<Expr, ParseError> {
    match sexpr {
        SExpr::Str(_, off) => err("string literal is not a valid expression", *off),
        SExpr::Atom(atom, off) => {
            if let Some(n) = parse_number(atom) {
                return Ok(Expr::Number(n));
            }
            if let Some(c) = Constant::from_name(atom) {
                return Ok(Expr::Const(c));
            }
            if atom.is_empty() {
                return err("empty atom", *off);
            }
            Ok(Expr::Var(atom.clone()))
        }
        SExpr::List(items, off) => {
            let head = match items.first() {
                Some(SExpr::Atom(h, _)) => h.as_str(),
                _ => return err("expected operator at head of list", *off),
            };
            let args = &items[1..];
            match head {
                "if" => {
                    if args.len() != 3 {
                        return err("if requires 3 arguments", *off);
                    }
                    Ok(Expr::If {
                        cond: Box::new(lower_expr(&args[0])?),
                        then: Box::new(lower_expr(&args[1])?),
                        otherwise: Box::new(lower_expr(&args[2])?),
                    })
                }
                "let" | "let*" => {
                    if args.len() != 2 {
                        return err("let requires a binding list and a body", *off);
                    }
                    let bindings = lower_bindings(&args[0])?;
                    Ok(Expr::Let {
                        sequential: head == "let*",
                        bindings,
                        body: Box::new(lower_expr(&args[1])?),
                    })
                }
                "while" | "while*" => {
                    if args.len() != 3 {
                        return err("while requires a condition, bindings, and a body", *off);
                    }
                    let cond = lower_expr(&args[0])?;
                    let vars = lower_loop_bindings(&args[1])?;
                    Ok(Expr::While {
                        sequential: head == "while*",
                        cond: Box::new(cond),
                        vars,
                        body: Box::new(lower_expr(&args[2])?),
                    })
                }
                "and" => Ok(Expr::And(lower_all(args)?)),
                "or" => Ok(Expr::Or(lower_all(args)?)),
                "not" => {
                    if args.len() != 1 {
                        return err("not requires 1 argument", *off);
                    }
                    Ok(Expr::Not(Box::new(lower_expr(&args[0])?)))
                }
                "!" => {
                    // Precision annotation: (! :precision binary64 expr).
                    // Properties are skipped; the final item is the expression.
                    match args.last() {
                        Some(last) => lower_expr(last),
                        None => err("empty annotation", *off),
                    }
                }
                "digits" => {
                    // (digits mantissa exponent base) — exact literal notation.
                    if args.len() != 3 {
                        return err("digits requires 3 arguments", *off);
                    }
                    let nums: Vec<f64> = args
                        .iter()
                        .map(|a| match a {
                            SExpr::Atom(s, o) => parse_number(s).ok_or_else(|| ParseError {
                                message: format!("invalid digits component {s}"),
                                offset: *o,
                            }),
                            other => err("digits components must be numbers", other.offset()),
                        })
                        .collect::<Result<_, _>>()?;
                    Ok(Expr::Number(nums[0] * nums[2].powf(nums[1])))
                }
                _ => {
                    if let Some(cmp) = cmp_from_name(head) {
                        return Ok(Expr::Cmp(cmp, lower_all(args)?));
                    }
                    if let Some(op) = op_from_name(head) {
                        let lowered = lower_all(args)?;
                        // Unary minus is negation, not subtraction.
                        if op == RealOp::Sub && lowered.len() == 1 {
                            return Ok(Expr::Op(RealOp::Neg, lowered));
                        }
                        // n-ary + and * fold left.
                        if matches!(op, RealOp::Add | RealOp::Mul) && lowered.len() > 2 {
                            let mut iter = lowered.into_iter();
                            let mut acc = iter.next().expect("non-empty");
                            for next in iter {
                                acc = Expr::Op(op, vec![acc, next]);
                            }
                            return Ok(acc);
                        }
                        if lowered.len() != op.arity() {
                            return err(
                                format!(
                                    "operator {head} expects {} arguments, got {}",
                                    op.arity(),
                                    lowered.len()
                                ),
                                *off,
                            );
                        }
                        return Ok(Expr::Op(op, lowered));
                    }
                    err(format!("unknown operator {head}"), *off)
                }
            }
        }
    }
}

fn lower_all(args: &[SExpr]) -> Result<Vec<Expr>, ParseError> {
    args.iter().map(lower_expr).collect()
}

fn lower_bindings(sexpr: &SExpr) -> Result<Vec<(String, Expr)>, ParseError> {
    match sexpr {
        SExpr::List(items, _) => items
            .iter()
            .map(|item| match item {
                SExpr::List(pair, off) if pair.len() == 2 => {
                    let name = match &pair[0] {
                        SExpr::Atom(n, _) => n.clone(),
                        other => return err("binding name must be a symbol", other.offset()),
                    };
                    Ok((name, lower_expr(&pair[1])?))
                }
                other => err("binding must be a (name expr) pair", other.offset()),
            })
            .collect(),
        other => err("expected a binding list", other.offset()),
    }
}

fn lower_loop_bindings(sexpr: &SExpr) -> Result<Vec<(String, Expr, Expr)>, ParseError> {
    match sexpr {
        SExpr::List(items, _) => items
            .iter()
            .map(|item| match item {
                SExpr::List(triple, off) if triple.len() == 3 => {
                    let name = match &triple[0] {
                        SExpr::Atom(n, _) => n.clone(),
                        other => return err("loop variable name must be a symbol", other.offset()),
                    };
                    Ok((name, lower_expr(&triple[1])?, lower_expr(&triple[2])?))
                }
                other => err(
                    "loop binding must be a (name init update) triple",
                    other.offset(),
                ),
            })
            .collect(),
        other => err("expected a loop binding list", other.offset()),
    }
}

fn lower_core(sexpr: &SExpr) -> Result<FPCore, ParseError> {
    let (items, off) = match sexpr {
        SExpr::List(items, off) => (items, *off),
        other => return err("expected an (FPCore ...) form", other.offset()),
    };
    match items.first() {
        Some(SExpr::Atom(head, _)) if head == "FPCore" => {}
        _ => return err("expected an (FPCore ...) form", off),
    }
    if items.len() < 3 {
        return err("FPCore requires an argument list and a body", off);
    }
    // Optional symbolic name may precede the argument list (FPCore 2.0).
    let mut index = 1;
    if let SExpr::Atom(_, _) = &items[index] {
        index += 1;
    }
    let arguments = match &items[index] {
        SExpr::List(args, _) => args
            .iter()
            .map(|a| match a {
                SExpr::Atom(name, _) => Ok(name.clone()),
                // Dimension/precision-annotated argument: (! :precision binary32 x)
                SExpr::List(parts, o) => match parts.last() {
                    Some(SExpr::Atom(name, _)) => Ok(name.clone()),
                    _ => err("invalid argument form", *o),
                },
                other => err("invalid argument form", other.offset()),
            })
            .collect::<Result<Vec<_>, _>>()?,
        other => return err("expected an argument list", other.offset()),
    };
    index += 1;

    let mut name = None;
    let mut pre = None;
    let mut properties = BTreeMap::new();
    while index + 1 < items.len() {
        let key = match &items[index] {
            SExpr::Atom(a, _) if a.starts_with(':') => a[1..].to_string(),
            _ => break,
        };
        let value = &items[index + 1];
        match key.as_str() {
            "name" => {
                name = Some(match value {
                    SExpr::Str(s, _) | SExpr::Atom(s, _) => s.clone(),
                    SExpr::List(_, o) => return err(":name must be a string", *o),
                });
            }
            "pre" => {
                pre = Some(lower_expr(value)?);
            }
            _ => {
                properties.insert(key, sexpr_to_text(value));
            }
        }
        index += 2;
    }
    if index != items.len() - 1 {
        return err("trailing items after FPCore body", off);
    }
    let body = lower_expr(&items[index])?;
    Ok(FPCore {
        arguments,
        name,
        pre,
        properties,
        body,
    })
}

fn sexpr_to_text(sexpr: &SExpr) -> String {
    match sexpr {
        SExpr::Atom(a, _) => a.clone(),
        SExpr::Str(s, _) => s.clone(),
        SExpr::List(items, _) => {
            let inner: Vec<String> = items.iter().map(sexpr_to_text).collect();
            format!("({})", inner.join(" "))
        }
    }
}

/// Parses a single `(FPCore ...)` form.
///
/// # Errors
///
/// Returns a [`ParseError`] when the input is not a single well-formed core.
pub fn parse_core(input: &str) -> Result<FPCore, ParseError> {
    let cores = parse_cores(input)?;
    match cores.len() {
        1 => Ok(cores.into_iter().next().expect("len checked")),
        n => err(format!("expected exactly one FPCore form, found {n}"), 0),
    }
}

/// Parses a file containing any number of `(FPCore ...)` forms.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_cores(input: &str) -> Result<Vec<FPCore>, ParseError> {
    let tokens = tokenize(input)?;
    let sexprs = parse_sexprs(&tokens)?;
    sexprs.iter().map(lower_core).collect()
}

/// Parses a bare FPCore expression (no `(FPCore ...)` wrapper), as used in
/// tests and in report round-tripping.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_expr(input: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(input)?;
    let sexprs = parse_sexprs(&tokens)?;
    match sexprs.len() {
        1 => lower_expr(&sexprs[0]),
        n => err(format!("expected exactly one expression, found {n}"), 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_core() {
        let core = parse_core("(FPCore (x y) :name \"hypotenuse\" (sqrt (+ (* x x) (* y y))))")
            .expect("parse");
        assert_eq!(core.arguments, vec!["x", "y"]);
        assert_eq!(core.name.as_deref(), Some("hypotenuse"));
        assert_eq!(core.body.operation_count(), 4);
    }

    #[test]
    fn parses_precondition_and_properties() {
        let core = parse_core(
            "(FPCore (x) :name \"test\" :cite (hamming-1987) :pre (and (<= 0 x) (<= x 1)) (sqrt x))",
        )
        .expect("parse");
        assert!(core.pre.is_some());
        assert!(core.properties.contains_key("cite"));
    }

    #[test]
    fn parses_let_and_while() {
        let core = parse_core("(FPCore (n) (while (< i n) ((i 0 (+ i 1)) (s 0 (+ s i))) s))");
        assert!(core.is_ok(), "{core:?}");
        let core = parse_core("(FPCore (x) (let ((y (* x x))) (+ y 1)))").expect("parse");
        assert_eq!(core.body.operation_count(), 2);
    }

    #[test]
    fn unary_minus_is_negation() {
        let e = parse_expr("(- x)").expect("parse");
        assert_eq!(e, Expr::Op(RealOp::Neg, vec![Expr::var("x")]));
        let e = parse_expr("(- x y)").expect("parse");
        assert_eq!(
            e,
            Expr::Op(RealOp::Sub, vec![Expr::var("x"), Expr::var("y")])
        );
    }

    #[test]
    fn nary_addition_folds_left() {
        let e = parse_expr("(+ a b c)").expect("parse");
        assert_eq!(e.operation_count(), 2);
    }

    #[test]
    fn rational_literals() {
        let e = parse_expr("1/4").expect("parse");
        assert_eq!(e, Expr::Number(0.25));
        let e = parse_expr("-355/113").expect("parse");
        assert_eq!(e, Expr::Number(-355.0 / 113.0));
    }

    #[test]
    fn digits_form() {
        let e = parse_expr("(digits 5 -2 10)").expect("parse");
        assert_eq!(e, Expr::Number(0.05));
    }

    #[test]
    fn annotation_is_transparent() {
        let e = parse_expr("(! :precision binary64 (+ x 1))").expect("parse");
        assert_eq!(e.operation_count(), 1);
    }

    #[test]
    fn error_on_unknown_operator() {
        assert!(parse_expr("(frobnicate x)").is_err());
    }

    #[test]
    fn error_on_unbalanced_parens() {
        assert!(parse_core("(FPCore (x) (+ x 1)").is_err());
        assert!(parse_core("(FPCore (x) (+ x 1)))").is_err());
    }

    #[test]
    fn error_on_wrong_arity() {
        assert!(parse_expr("(sqrt x y)").is_err());
        assert!(parse_expr("(atan2 x)").is_err());
    }

    #[test]
    fn parses_multiple_cores() {
        let text = "
            ;; two benchmarks
            (FPCore (x) :name \"a\" (+ x 1))
            (FPCore (y) :name \"b\" (* y y))
        ";
        let cores = parse_cores(text).expect("parse");
        assert_eq!(cores.len(), 2);
        assert_eq!(cores[0].name.as_deref(), Some("a"));
        assert_eq!(cores[1].name.as_deref(), Some("b"));
    }

    #[test]
    fn comments_are_ignored() {
        let core = parse_core("; leading comment\n(FPCore (x) ; inline\n (+ x 1))").expect("parse");
        assert_eq!(core.arguments, vec!["x"]);
    }

    #[test]
    fn named_core_form_is_accepted() {
        // FPCore 2.0 allows (FPCore ident (args) body).
        let core = parse_core("(FPCore myfn (x) (+ x 1))").expect("parse");
        assert_eq!(core.arguments, vec!["x"]);
    }
}

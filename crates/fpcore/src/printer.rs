//! Pretty-printing of FPCore expressions and cores.
//!
//! Herbgrind's reports print symbolic expressions in FPCore syntax so that
//! they can be piped straight into Herbie (§3 of the paper shows such a
//! report); this module produces that syntax. Printing followed by parsing
//! is the identity on the supported subset, which the round-trip tests in
//! this module and the property tests in `tests/` rely on.

use crate::ast::{Expr, FPCore};

/// Formats a numeric literal the way FPCore expects (plain decimal, with
/// enough digits to round-trip).
pub fn number_to_string(value: f64) -> String {
    if value.is_nan() {
        return "NAN".to_string();
    }
    if value.is_infinite() {
        return if value > 0.0 { "INFINITY" } else { "-INFINITY" }.to_string();
    }
    if value == value.trunc() && value.abs() < 1e15 {
        // Integral values print without an exponent or fraction.
        return format!("{}", value as i64);
    }
    let s = format!("{value:e}");
    // `{:e}` produces e.g. 2.5e-1 which FPCore accepts.
    s
}

/// Renders an expression as FPCore concrete syntax.
pub fn expr_to_string(expr: &Expr) -> String {
    match expr {
        Expr::Number(n) => number_to_string(*n),
        Expr::Const(c) => c.name().to_string(),
        Expr::Var(v) => v.clone(),
        Expr::Op(op, args) => {
            let parts: Vec<String> = args.iter().map(expr_to_string).collect();
            format!("({} {})", op.name(), parts.join(" "))
        }
        Expr::Cmp(op, args) => {
            let parts: Vec<String> = args.iter().map(expr_to_string).collect();
            format!("({} {})", op.name(), parts.join(" "))
        }
        Expr::And(args) => {
            let parts: Vec<String> = args.iter().map(expr_to_string).collect();
            format!("(and {})", parts.join(" "))
        }
        Expr::Or(args) => {
            let parts: Vec<String> = args.iter().map(expr_to_string).collect();
            format!("(or {})", parts.join(" "))
        }
        Expr::Not(inner) => format!("(not {})", expr_to_string(inner)),
        Expr::If {
            cond,
            then,
            otherwise,
        } => format!(
            "(if {} {} {})",
            expr_to_string(cond),
            expr_to_string(then),
            expr_to_string(otherwise)
        ),
        Expr::Let {
            sequential,
            bindings,
            body,
        } => {
            let head = if *sequential { "let*" } else { "let" };
            let binds: Vec<String> = bindings
                .iter()
                .map(|(name, e)| format!("({} {})", name, expr_to_string(e)))
                .collect();
            format!("({} ({}) {})", head, binds.join(" "), expr_to_string(body))
        }
        Expr::While {
            sequential,
            cond,
            vars,
            body,
        } => {
            let head = if *sequential { "while*" } else { "while" };
            let binds: Vec<String> = vars
                .iter()
                .map(|(name, init, update)| {
                    format!(
                        "({} {} {})",
                        name,
                        expr_to_string(init),
                        expr_to_string(update)
                    )
                })
                .collect();
            format!(
                "({} {} ({}) {})",
                head,
                expr_to_string(cond),
                binds.join(" "),
                expr_to_string(body)
            )
        }
    }
}

/// Renders a full `(FPCore ...)` form.
pub fn core_to_string(core: &FPCore) -> String {
    let mut parts = vec![
        "FPCore".to_string(),
        format!("({})", core.arguments.join(" ")),
    ];
    if let Some(name) = &core.name {
        parts.push(format!(":name \"{name}\""));
    }
    if let Some(pre) = &core.pre {
        parts.push(format!(":pre {}", expr_to_string(pre)));
    }
    for (key, value) in &core.properties {
        parts.push(format!(":{key} {value}"));
    }
    parts.push(expr_to_string(&core.body));
    format!("({})", parts.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_core, parse_expr};

    #[test]
    fn numbers_print_readably() {
        assert_eq!(number_to_string(1.0), "1");
        assert_eq!(number_to_string(-3.0), "-3");
        assert_eq!(number_to_string(f64::INFINITY), "INFINITY");
        assert_eq!(number_to_string(f64::NAN), "NAN");
    }

    #[test]
    fn expression_round_trips_through_parser() {
        let sources = [
            "(- (sqrt (+ (* x x) (* y y))) x)",
            "(if (< x 0) (- x) x)",
            "(let ((z (/ 1 (- x 113)))) (- (+ z PI) z))",
            "(while (< i n) ((i 0 (+ i 1)) (s 0 (+ s (/ 1 i)))) s)",
            "(fma x y z)",
            "(and (<= 0 x) (not (== x 1)))",
        ];
        for src in sources {
            let parsed = parse_expr(src).expect("parse");
            let printed = expr_to_string(&parsed);
            let reparsed = parse_expr(&printed).expect("reparse");
            assert_eq!(parsed, reparsed, "round trip of {src} via {printed}");
        }
    }

    #[test]
    fn core_round_trips_through_parser() {
        let src = "(FPCore (x y) :name \"example\" :pre (< 0 x y) (- (sqrt (+ x y)) (sqrt x)))";
        let parsed = parse_core(src).expect("parse");
        let printed = core_to_string(&parsed);
        let reparsed = parse_core(&printed).expect("reparse");
        assert_eq!(parsed.arguments, reparsed.arguments);
        assert_eq!(parsed.name, reparsed.name);
        assert_eq!(parsed.body, reparsed.body);
        assert_eq!(parsed.pre, reparsed.pre);
    }

    #[test]
    fn scientific_notation_round_trips() {
        let e = Expr::Number(2.497500e-1);
        let printed = expr_to_string(&e);
        let reparsed = parse_expr(&printed).expect("reparse");
        assert_eq!(e, reparsed);
    }
}

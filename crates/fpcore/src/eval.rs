//! Reference evaluation of FPCore expressions over any [`Real`] type.
//!
//! This evaluator is the "oracle" of the improvability experiment (§8.1): it
//! evaluates a benchmark both in double precision and with a high-precision
//! shadow ([`shadowreal::BigFloat`]) directly on the source expression,
//! bypassing the abstract machine entirely. Comparing the two gives the
//! ground-truth error of a benchmark independent of Herbgrind.

use crate::ast::{Constant, Expr, FPCore};
use shadowreal::Real;
use std::collections::HashMap;
use std::fmt;

/// The result of evaluating an expression: a number or a boolean.
#[derive(Clone, Debug)]
pub enum Value<R> {
    /// A numeric result.
    Num(R),
    /// A boolean result (from comparisons and logical operators).
    Bool(bool),
}

impl<R: Real> Value<R> {
    /// Extracts the numeric payload.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::TypeMismatch`] if the value is a boolean.
    pub fn into_num(self) -> Result<R, EvalError> {
        match self {
            Value::Num(r) => Ok(r),
            Value::Bool(_) => Err(EvalError::TypeMismatch("expected a number, got a boolean")),
        }
    }

    /// Extracts the boolean payload.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::TypeMismatch`] if the value is a number.
    pub fn into_bool(self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(b),
            Value::Num(_) => Err(EvalError::TypeMismatch("expected a boolean, got a number")),
        }
    }
}

/// Errors produced during evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A variable was referenced that is not bound.
    UnboundVariable(String),
    /// A boolean was used as a number or vice versa.
    TypeMismatch(&'static str),
    /// A `while` loop exceeded the iteration budget.
    LoopBudgetExceeded {
        /// The configured maximum number of iterations.
        limit: usize,
    },
    /// The number of supplied arguments does not match the core's parameters.
    ArityMismatch {
        /// Number of formal parameters.
        expected: usize,
        /// Number of supplied arguments.
        actual: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(name) => write!(f, "unbound variable {name}"),
            EvalError::TypeMismatch(msg) => write!(f, "type mismatch: {msg}"),
            EvalError::LoopBudgetExceeded { limit } => {
                write!(f, "while loop exceeded the {limit}-iteration budget")
            }
            EvalError::ArityMismatch { expected, actual } => {
                write!(f, "expected {expected} arguments, got {actual}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Default bound on `while` loop iterations, to keep evaluation total.
pub const DEFAULT_LOOP_LIMIT: usize = 1_000_000;

/// An environment mapping variable names to values.
pub type Env<R> = HashMap<String, R>;

/// Evaluates an expression in the given environment.
///
/// # Errors
///
/// Propagates [`EvalError`] for unbound variables, type mismatches, and loop
/// budget exhaustion.
pub fn eval_expr<R: Real>(expr: &Expr, env: &Env<R>) -> Result<Value<R>, EvalError> {
    eval_with_limit(expr, env, DEFAULT_LOOP_LIMIT)
}

/// Evaluates an expression with an explicit `while`-loop iteration budget.
///
/// # Errors
///
/// Propagates [`EvalError`] for unbound variables, type mismatches, and loop
/// budget exhaustion.
pub fn eval_with_limit<R: Real>(
    expr: &Expr,
    env: &Env<R>,
    loop_limit: usize,
) -> Result<Value<R>, EvalError> {
    match expr {
        Expr::Number(n) => Ok(Value::Num(R::from_f64(*n))),
        Expr::Const(Constant::True) => Ok(Value::Bool(true)),
        Expr::Const(Constant::False) => Ok(Value::Bool(false)),
        Expr::Const(c) => Ok(Value::Num(R::from_f64(c.value()))),
        Expr::Var(name) => env
            .get(name)
            .cloned()
            .map(Value::Num)
            .ok_or_else(|| EvalError::UnboundVariable(name.clone())),
        Expr::Op(op, args) => {
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(eval_with_limit(a, env, loop_limit)?.into_num()?);
            }
            Ok(Value::Num(R::apply(*op, &values)))
        }
        Expr::Cmp(op, args) => {
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(eval_with_limit(a, env, loop_limit)?.into_num()?);
            }
            // Chained comparison: every adjacent pair must satisfy the operator.
            let ok = values
                .windows(2)
                .all(|pair| op.holds(pair[0].compare(&pair[1])));
            Ok(Value::Bool(ok))
        }
        Expr::And(args) => {
            for a in args {
                if !eval_with_limit(a, env, loop_limit)?.into_bool()? {
                    return Ok(Value::Bool(false));
                }
            }
            Ok(Value::Bool(true))
        }
        Expr::Or(args) => {
            for a in args {
                if eval_with_limit(a, env, loop_limit)?.into_bool()? {
                    return Ok(Value::Bool(true));
                }
            }
            Ok(Value::Bool(false))
        }
        Expr::Not(inner) => Ok(Value::Bool(
            !eval_with_limit(inner, env, loop_limit)?.into_bool()?,
        )),
        Expr::If {
            cond,
            then,
            otherwise,
        } => {
            if eval_with_limit(cond, env, loop_limit)?.into_bool()? {
                eval_with_limit(then, env, loop_limit)
            } else {
                eval_with_limit(otherwise, env, loop_limit)
            }
        }
        Expr::Let {
            sequential,
            bindings,
            body,
        } => {
            let mut scope = env.clone();
            if *sequential {
                for (name, e) in bindings {
                    let v = eval_with_limit(e, &scope, loop_limit)?.into_num()?;
                    scope.insert(name.clone(), v);
                }
            } else {
                let mut values = Vec::with_capacity(bindings.len());
                for (_, e) in bindings {
                    values.push(eval_with_limit(e, env, loop_limit)?.into_num()?);
                }
                for ((name, _), v) in bindings.iter().zip(values) {
                    scope.insert(name.clone(), v);
                }
            }
            eval_with_limit(body, &scope, loop_limit)
        }
        Expr::While {
            sequential,
            cond,
            vars,
            body,
        } => {
            let mut scope = env.clone();
            for (name, init, _) in vars {
                let v = eval_with_limit(init, env, loop_limit)?.into_num()?;
                scope.insert(name.clone(), v);
            }
            let mut iterations = 0usize;
            while eval_with_limit(cond, &scope, loop_limit)?.into_bool()? {
                iterations += 1;
                if iterations > loop_limit {
                    return Err(EvalError::LoopBudgetExceeded { limit: loop_limit });
                }
                if *sequential {
                    for (name, _, update) in vars {
                        let v = eval_with_limit(update, &scope, loop_limit)?.into_num()?;
                        scope.insert(name.clone(), v);
                    }
                } else {
                    let mut next = Vec::with_capacity(vars.len());
                    for (_, _, update) in vars {
                        next.push(eval_with_limit(update, &scope, loop_limit)?.into_num()?);
                    }
                    for ((name, _, _), v) in vars.iter().zip(next) {
                        scope.insert(name.clone(), v);
                    }
                }
            }
            eval_with_limit(body, &scope, loop_limit)
        }
    }
}

/// Evaluates a core on positional arguments.
///
/// # Errors
///
/// Returns [`EvalError::ArityMismatch`] when the argument count is wrong, and
/// propagates evaluation errors from the body.
pub fn eval_core<R: Real>(core: &FPCore, args: &[R]) -> Result<R, EvalError> {
    if args.len() != core.arguments.len() {
        return Err(EvalError::ArityMismatch {
            expected: core.arguments.len(),
            actual: args.len(),
        });
    }
    let mut env = Env::new();
    for (name, value) in core.arguments.iter().zip(args) {
        env.insert(name.clone(), value.clone());
    }
    eval_expr(&core.body, &env)?.into_num()
}

/// Evaluates a core in plain double precision (the client semantics).
///
/// # Errors
///
/// See [`eval_core`].
pub fn eval_f64(core: &FPCore, args: &[f64]) -> Result<f64, EvalError> {
    eval_core::<f64>(core, args)
}

/// Checks a core's `:pre` condition on the given double arguments. Cores
/// without a precondition accept every input.
///
/// # Errors
///
/// Propagates evaluation errors from the precondition expression.
pub fn precondition_holds(core: &FPCore, args: &[f64]) -> Result<bool, EvalError> {
    let Some(pre) = &core.pre else {
        return Ok(true);
    };
    let mut env = Env::new();
    for (name, value) in core.arguments.iter().zip(args) {
        env.insert(name.clone(), *value);
    }
    eval_expr(pre, &env)?.into_bool()
}

/// Evaluates a core in double precision and with the given shadow type, and
/// returns the client result, the shadow result (rounded to double), and the
/// bits of error between them.
///
/// # Errors
///
/// See [`eval_core`].
pub fn reference_error<R: Real>(core: &FPCore, args: &[f64]) -> Result<(f64, f64, f64), EvalError> {
    let client = eval_f64(core, args)?;
    let shadow_args: Vec<R> = args.iter().map(|&a| R::from_f64(a)).collect();
    let shadow = eval_core(core, &shadow_args)?.to_f64();
    Ok((client, shadow, shadowreal::bits_error(client, shadow)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_core, parse_expr};
    use shadowreal::BigFloat;

    fn env_of(pairs: &[(&str, f64)]) -> Env<f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn arithmetic_and_constants() {
        let e = parse_expr("(+ (* 2 PI) 1)").unwrap();
        let v = eval_expr(&e, &Env::<f64>::new())
            .unwrap()
            .into_num()
            .unwrap();
        assert!((v - (2.0 * std::f64::consts::PI + 1.0)).abs() < 1e-15);
    }

    #[test]
    fn conditionals_and_comparisons() {
        let e = parse_expr("(if (< x 0) (- x) x)").unwrap();
        assert_eq!(
            eval_expr(&e, &env_of(&[("x", -3.0)]))
                .unwrap()
                .into_num()
                .unwrap(),
            3.0
        );
        assert_eq!(
            eval_expr(&e, &env_of(&[("x", 4.0)]))
                .unwrap()
                .into_num()
                .unwrap(),
            4.0
        );
    }

    #[test]
    fn chained_comparison() {
        let e = parse_expr("(< 0 x 1)").unwrap();
        assert!(eval_expr(&e, &env_of(&[("x", 0.5)]))
            .unwrap()
            .into_bool()
            .unwrap());
        assert!(!eval_expr(&e, &env_of(&[("x", 2.0)]))
            .unwrap()
            .into_bool()
            .unwrap());
    }

    #[test]
    fn let_bindings_are_parallel_by_default() {
        // In parallel let, the second binding sees the outer x, not the first
        // binding.
        let e = parse_expr("(let ((x 1) (y x)) y)").unwrap();
        let v = eval_expr(&e, &env_of(&[("x", 42.0)]))
            .unwrap()
            .into_num()
            .unwrap();
        assert_eq!(v, 42.0);
        // let* is sequential.
        let e = parse_expr("(let* ((x 1) (y x)) y)").unwrap();
        let v = eval_expr(&e, &env_of(&[("x", 42.0)]))
            .unwrap()
            .into_num()
            .unwrap();
        assert_eq!(v, 1.0);
    }

    #[test]
    fn while_loop_computes_harmonic_sum() {
        let core =
            parse_core("(FPCore (n) (while (<= i n) ((i 1 (+ i 1)) (s 0 (+ s (/ 1 i)))) s))")
                .unwrap();
        let v = eval_f64(&core, &[4.0]).unwrap();
        assert!((v - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn while_loop_budget_is_enforced() {
        let core = parse_core("(FPCore () (while (< 0 1) ((x 0 x)) x))").unwrap();
        let mut env = Env::<f64>::new();
        env.clear();
        let result = eval_with_limit(&core.body, &env, 10);
        assert_eq!(
            result.unwrap_err(),
            EvalError::LoopBudgetExceeded { limit: 10 }
        );
    }

    #[test]
    fn unbound_variable_is_reported() {
        let e = parse_expr("(+ x ghost)").unwrap();
        let err = eval_expr(&e, &env_of(&[("x", 1.0)])).unwrap_err();
        assert_eq!(err, EvalError::UnboundVariable("ghost".to_string()));
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let core = parse_core("(FPCore (x y) (+ x y))").unwrap();
        let err = eval_f64(&core, &[1.0]).unwrap_err();
        assert_eq!(
            err,
            EvalError::ArityMismatch {
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn precondition_filtering() {
        let core = parse_core("(FPCore (x) :pre (< 1 x 2) (sqrt (- x 1)))").unwrap();
        assert!(precondition_holds(&core, &[1.5]).unwrap());
        assert!(!precondition_holds(&core, &[5.0]).unwrap());
    }

    #[test]
    fn reference_error_detects_catastrophic_cancellation() {
        // sqrt(x+1) - sqrt(x) at x = 1e15 is wildly inaccurate in doubles.
        let core = parse_core("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
        let (_, _, bits) = reference_error::<BigFloat>(&core, &[1e15]).unwrap();
        assert!(bits > 5.0, "expected significant error, got {bits} bits");
        // And it is accurate for small x.
        let (_, _, bits) = reference_error::<BigFloat>(&core, &[0.5]).unwrap();
        assert!(bits < 2.0, "expected small error, got {bits} bits");
    }

    #[test]
    fn booleans_are_not_numbers() {
        let e = parse_expr("(+ (< 1 2) 1)").unwrap();
        assert!(matches!(
            eval_expr(&e, &Env::<f64>::new()),
            Err(EvalError::TypeMismatch(_))
        ));
    }

    #[test]
    fn shadow_evaluation_is_more_accurate() {
        let core = parse_core("(FPCore (x) (- (+ x 1) x))").unwrap();
        let client = eval_f64(&core, &[1e16]).unwrap();
        let shadow = eval_core::<BigFloat>(&core, &[BigFloat::from_f64(1e16)])
            .unwrap()
            .to_f64();
        assert_ne!(client, 1.0);
        assert_eq!(shadow, 1.0);
    }
}

//! The FPCore benchmark language.
//!
//! FPBench's FPCore format is the input language of the paper's evaluation
//! (§8): every benchmark is an `(FPCore (args ...) :pre ... body)` form, and
//! Herbgrind's reports are themselves printed as FPCore fragments so that
//! they can be handed to Herbie.
//!
//! This crate provides:
//!
//! * an [`ast`] of FPCore expressions and top-level cores,
//! * an s-expression [`parser`](parse_core) and [`printer`],
//! * an [`eval`] module that evaluates an expression over any
//!   [`shadowreal::Real`] implementation (used both for reference
//!   evaluation and for the "oracle" of the improvability experiment).
//!
//! # Example
//!
//! ```
//! use fpcore::{parse_core, eval::eval_f64};
//!
//! let core = parse_core("(FPCore (x) :name \"double\" (* x 2))").unwrap();
//! assert_eq!(core.arguments, vec!["x".to_string()]);
//! assert_eq!(eval_f64(&core, &[21.0]).unwrap(), 42.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod parser;
pub mod printer;

pub use ast::{CmpOp, Constant, Expr, FPCore};
pub use parser::{parse_core, parse_cores, parse_expr, ParseError};
pub use printer::{core_to_string, expr_to_string};

//! Abstract syntax for FPCore expressions and top-level cores.

use shadowreal::RealOp;
use std::collections::BTreeMap;
use std::fmt;

/// A named mathematical constant usable in FPCore expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Constant {
    Pi,
    HalfPi,
    E,
    Ln2,
    Infinity,
    NegInfinity,
    Nan,
    True,
    False,
}

impl Constant {
    /// The FPCore spelling of the constant.
    pub fn name(self) -> &'static str {
        match self {
            Constant::Pi => "PI",
            Constant::HalfPi => "PI_2",
            Constant::E => "E",
            Constant::Ln2 => "LN2",
            Constant::Infinity => "INFINITY",
            Constant::NegInfinity => "-INFINITY",
            Constant::Nan => "NAN",
            Constant::True => "TRUE",
            Constant::False => "FALSE",
        }
    }

    /// Looks up a constant by its FPCore spelling.
    pub fn from_name(name: &str) -> Option<Constant> {
        Some(match name {
            "PI" => Constant::Pi,
            "PI_2" => Constant::HalfPi,
            "E" => Constant::E,
            "LN2" => Constant::Ln2,
            "INFINITY" => Constant::Infinity,
            "-INFINITY" => Constant::NegInfinity,
            "NAN" => Constant::Nan,
            "TRUE" => Constant::True,
            "FALSE" => Constant::False,
            _ => return None,
        })
    }

    /// The double-precision value of the constant (for `TRUE`/`FALSE`, 1/0).
    pub fn value(self) -> f64 {
        match self {
            Constant::Pi => std::f64::consts::PI,
            Constant::HalfPi => std::f64::consts::FRAC_PI_2,
            Constant::E => std::f64::consts::E,
            Constant::Ln2 => std::f64::consts::LN_2,
            Constant::Infinity => f64::INFINITY,
            Constant::NegInfinity => f64::NEG_INFINITY,
            Constant::Nan => f64::NAN,
            Constant::True => 1.0,
            Constant::False => 0.0,
        }
    }
}

/// A comparison operator appearing in preconditions and `if` tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    /// The FPCore spelling of the operator.
    pub fn name(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }

    /// Evaluates the comparison on an adjacent pair ordering result.
    pub fn holds(self, ord: Option<std::cmp::Ordering>) -> bool {
        use std::cmp::Ordering::*;
        match (self, ord) {
            (_, None) => matches!(self, CmpOp::Ne),
            (CmpOp::Lt, Some(Less)) => true,
            (CmpOp::Le, Some(Less | Equal)) => true,
            (CmpOp::Gt, Some(Greater)) => true,
            (CmpOp::Ge, Some(Greater | Equal)) => true,
            (CmpOp::Eq, Some(Equal)) => true,
            (CmpOp::Ne, Some(Less | Greater)) => true,
            _ => false,
        }
    }
}

/// An FPCore expression.
///
/// Numeric and boolean expressions share one type, as in the FPCore
/// standard; evaluation reports an error when a boolean is used where a
/// number is required and vice versa.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A numeric literal.
    Number(f64),
    /// A named constant.
    Const(Constant),
    /// A variable reference.
    Var(String),
    /// An application of a floating-point operation.
    Op(RealOp, Vec<Expr>),
    /// A chained comparison, e.g. `(< a b c)`.
    Cmp(CmpOp, Vec<Expr>),
    /// Logical conjunction.
    And(Vec<Expr>),
    /// Logical disjunction.
    Or(Vec<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// A conditional expression.
    If {
        /// The boolean test.
        cond: Box<Expr>,
        /// Value when the test holds.
        then: Box<Expr>,
        /// Value when the test fails.
        otherwise: Box<Expr>,
    },
    /// Parallel (`let`) or sequential (`let*`) bindings.
    Let {
        /// True for `let*` (sequential) binding semantics.
        sequential: bool,
        /// The bound names and their defining expressions.
        bindings: Vec<(String, Expr)>,
        /// The body evaluated with the bindings in scope.
        body: Box<Expr>,
    },
    /// A `while` loop: iteration variables with initial and update
    /// expressions, a condition, and a result body.
    While {
        /// True for `while*` (sequential update) semantics.
        sequential: bool,
        /// The loop condition.
        cond: Box<Expr>,
        /// `(name, init, update)` triples.
        vars: Vec<(String, Expr, Expr)>,
        /// The value of the loop once the condition fails.
        body: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a variable.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// Convenience constructor for a numeric literal.
    pub fn num(value: f64) -> Expr {
        Expr::Number(value)
    }

    /// Convenience constructor for an operation.
    pub fn op(op: RealOp, args: Vec<Expr>) -> Expr {
        Expr::Op(op, args)
    }

    /// All free variables of the expression, in first-use order.
    pub fn free_variables(&self) -> Vec<String> {
        let mut seen = Vec::new();
        let mut bound = Vec::new();
        self.collect_free(&mut bound, &mut seen);
        seen
    }

    fn collect_free(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        match self {
            Expr::Number(_) | Expr::Const(_) => {}
            Expr::Var(name) => {
                if !bound.contains(name) && !out.contains(name) {
                    out.push(name.clone());
                }
            }
            Expr::Op(_, args) | Expr::Cmp(_, args) | Expr::And(args) | Expr::Or(args) => {
                for a in args {
                    a.collect_free(bound, out);
                }
            }
            Expr::Not(inner) => inner.collect_free(bound, out),
            Expr::If {
                cond,
                then,
                otherwise,
            } => {
                cond.collect_free(bound, out);
                then.collect_free(bound, out);
                otherwise.collect_free(bound, out);
            }
            Expr::Let {
                sequential,
                bindings,
                body,
            } => {
                let depth = bound.len();
                for (name, expr) in bindings {
                    expr.collect_free(bound, out);
                    if *sequential {
                        bound.push(name.clone());
                    }
                }
                if !*sequential {
                    for (name, _) in bindings {
                        bound.push(name.clone());
                    }
                }
                body.collect_free(bound, out);
                bound.truncate(depth);
            }
            Expr::While {
                cond,
                vars,
                body,
                sequential: _,
            } => {
                let depth = bound.len();
                for (_, init, _) in vars {
                    init.collect_free(bound, out);
                }
                for (name, _, _) in vars {
                    bound.push(name.clone());
                }
                cond.collect_free(bound, out);
                for (_, _, update) in vars {
                    update.collect_free(bound, out);
                }
                body.collect_free(bound, out);
                bound.truncate(depth);
            }
        }
    }

    /// The number of operation nodes in the expression (used to report
    /// expression sizes in the library-wrapping experiment, §8.2).
    pub fn operation_count(&self) -> usize {
        match self {
            Expr::Number(_) | Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Op(_, args) => 1 + args.iter().map(Expr::operation_count).sum::<usize>(),
            Expr::Cmp(_, args) | Expr::And(args) | Expr::Or(args) => {
                args.iter().map(Expr::operation_count).sum()
            }
            Expr::Not(inner) => inner.operation_count(),
            Expr::If {
                cond,
                then,
                otherwise,
            } => cond.operation_count() + then.operation_count() + otherwise.operation_count(),
            Expr::Let { bindings, body, .. } => {
                bindings
                    .iter()
                    .map(|(_, e)| e.operation_count())
                    .sum::<usize>()
                    + body.operation_count()
            }
            Expr::While {
                cond, vars, body, ..
            } => {
                cond.operation_count()
                    + vars
                        .iter()
                        .map(|(_, i, u)| i.operation_count() + u.operation_count())
                        .sum::<usize>()
                    + body.operation_count()
            }
        }
    }

    /// The depth of the expression tree counting only operation nodes.
    pub fn depth(&self) -> usize {
        match self {
            Expr::Number(_) | Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Op(_, args) => 1 + args.iter().map(Expr::depth).max().unwrap_or(0),
            Expr::Cmp(_, args) | Expr::And(args) | Expr::Or(args) => {
                args.iter().map(Expr::depth).max().unwrap_or(0)
            }
            Expr::Not(inner) => inner.depth(),
            Expr::If {
                cond,
                then,
                otherwise,
            } => cond.depth().max(then.depth()).max(otherwise.depth()),
            Expr::Let { bindings, body, .. } => bindings
                .iter()
                .map(|(_, e)| e.depth())
                .max()
                .unwrap_or(0)
                .max(body.depth()),
            Expr::While {
                cond, vars, body, ..
            } => cond.depth().max(body.depth()).max(
                vars.iter()
                    .map(|(_, i, u)| i.depth().max(u.depth()))
                    .max()
                    .unwrap_or(0),
            ),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::expr_to_string(self))
    }
}

/// A top-level FPCore benchmark: argument list, properties and a body.
#[derive(Clone, Debug, PartialEq)]
pub struct FPCore {
    /// The formal argument names.
    pub arguments: Vec<String>,
    /// The `:name` property, if present.
    pub name: Option<String>,
    /// The `:pre` precondition, if present.
    pub pre: Option<Expr>,
    /// Any other string-valued properties (`:cite`, `:description`, ...).
    pub properties: BTreeMap<String, String>,
    /// The benchmark body.
    pub body: Expr,
}

impl FPCore {
    /// Creates a core with no properties.
    pub fn new(arguments: Vec<String>, body: Expr) -> FPCore {
        FPCore {
            arguments,
            name: None,
            pre: None,
            properties: BTreeMap::new(),
            body,
        }
    }

    /// The display name: the `:name` property or `"anonymous"`.
    pub fn display_name(&self) -> &str {
        self.name.as_deref().unwrap_or("anonymous")
    }
}

impl fmt::Display for FPCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::core_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_round_trip_by_name() {
        for c in [
            Constant::Pi,
            Constant::E,
            Constant::Infinity,
            Constant::Nan,
            Constant::True,
        ] {
            assert_eq!(Constant::from_name(c.name()), Some(c));
        }
        assert_eq!(Constant::from_name("NOPE"), None);
    }

    #[test]
    fn cmp_op_semantics() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Lt.holds(Some(Less)));
        assert!(!CmpOp::Lt.holds(Some(Equal)));
        assert!(CmpOp::Le.holds(Some(Equal)));
        assert!(CmpOp::Ne.holds(None));
        assert!(!CmpOp::Eq.holds(None));
        assert!(CmpOp::Ge.holds(Some(Greater)));
    }

    #[test]
    fn free_variables_respect_let_binding() {
        // (let ((y (+ x 1))) (* y z)) has free variables x and z.
        let expr = Expr::Let {
            sequential: false,
            bindings: vec![(
                "y".to_string(),
                Expr::op(RealOp::Add, vec![Expr::var("x"), Expr::num(1.0)]),
            )],
            body: Box::new(Expr::op(RealOp::Mul, vec![Expr::var("y"), Expr::var("z")])),
        };
        assert_eq!(
            expr.free_variables(),
            vec!["x".to_string(), "z".to_string()]
        );
    }

    #[test]
    fn free_variables_respect_while_binding() {
        let expr = Expr::While {
            sequential: false,
            cond: Box::new(Expr::Cmp(CmpOp::Lt, vec![Expr::var("i"), Expr::var("n")])),
            vars: vec![(
                "i".to_string(),
                Expr::num(0.0),
                Expr::op(RealOp::Add, vec![Expr::var("i"), Expr::num(1.0)]),
            )],
            body: Box::new(Expr::var("i")),
        };
        assert_eq!(expr.free_variables(), vec!["n".to_string()]);
    }

    #[test]
    fn operation_count_and_depth() {
        // sqrt(x*x + y*y) - x  =>  4 ops deep chain of 4.
        let expr = Expr::op(
            RealOp::Sub,
            vec![
                Expr::op(
                    RealOp::Sqrt,
                    vec![Expr::op(
                        RealOp::Add,
                        vec![
                            Expr::op(RealOp::Mul, vec![Expr::var("x"), Expr::var("x")]),
                            Expr::op(RealOp::Mul, vec![Expr::var("y"), Expr::var("y")]),
                        ],
                    )],
                ),
                Expr::var("x"),
            ],
        );
        assert_eq!(expr.operation_count(), 5);
        assert_eq!(expr.depth(), 4);
    }
}
